"""ECO (engineering change order) placement.

Step 4 of the paper's flow applies the netlist changes made after
initial placement — layout-driven scan reordering buffers, clock-tree
buffers — to the existing layout without disturbing placed cells.  New
cells are inserted into the rows nearest their desired locations,
subject to free-site capacity, and the touched rows are re-packed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.layout.geometry import Point
from repro.layout.placement import Placement, _pack_row
from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT


def desired_position(circuit: Circuit, placement: Placement,
                     inst_name: str) -> Point:
    """Centroid of the already-placed pins connected to ``inst_name``."""
    inst = circuit.instances[inst_name]
    points: List[Point] = []
    for net_name in inst.conns.values():
        net = circuit.nets[net_name]
        refs = list(net.sinks)
        if net.driver is not None:
            refs.append(net.driver)
        for other, pin in refs:
            if other == inst_name:
                continue
            if other == PORT:
                pos = placement.plan.pad_positions.get(pin)
            else:
                pos = placement.positions.get(other)
            if pos is not None:
                points.append(pos)
    if not points:
        return placement.plan.core.center
    return (
        sum(p[0] for p in points) / len(points),
        sum(p[1] for p in points) / len(points),
    )


def eco_place(circuit: Circuit, placement: Placement,
              new_cells: Iterable[str],
              hints: Optional[Dict[str, Point]] = None) -> List[str]:
    """Insert ``new_cells`` into the existing placement.

    Args:
        circuit: Netlist containing the new instances.
        placement: Placement updated in place.
        new_cells: Names of unplaced instances.
        hints: Optional desired position per cell (e.g. CTS centroids);
            connectivity centroids are used otherwise.

    Returns:
        The cells placed (same names, for chaining).

    Raises:
        ValueError: No row has room for some cell.
    """
    plan = placement.plan
    occupancy = placement.row_occupancy_sites(circuit)
    capacity = [row.n_sites for row in plan.rows]
    placed: List[str] = []
    touched = set()

    for name in new_cells:
        if name in placement.positions:
            continue
        cell = circuit.instances[name].cell
        want = (hints or {}).get(name)
        if want is None:
            want = desired_position(circuit, placement, name)
        # Rows ordered by distance from the desired y.
        order = sorted(
            range(plan.n_rows),
            key=lambda r: abs(plan.rows[r].y - want[1]),
        )
        target_row = None
        for row_index in order:
            if occupancy[row_index] + cell.width_sites <= capacity[row_index]:
                target_row = row_index
                break
        if target_row is None:
            raise ValueError(
                f"ECO overflow: no room for {name!r} "
                f"({cell.width_sites} sites)"
            )
        cells = placement.rows_cells[target_row]
        # Insert at the x-ordered position nearest the desired x.
        insert_at = len(cells)
        for i, existing in enumerate(cells):
            if placement.positions[existing][0] >= want[0]:
                insert_at = i
                break
        cells.insert(insert_at, name)
        placement.row_of[name] = target_row
        occupancy[target_row] += cell.width_sites
        # Temporary position; the re-pack below finalises it.
        placement.positions[name] = want
        touched.add(target_row)
        placed.append(name)

    for row_index in touched:
        before_pack = {
            name: placement.positions.get(name)
            for name in placement.rows_cells[row_index]
        }
        _pack_row(circuit, plan, placement, row_index)
        # Cells the re-pack actually shifted have new pin positions:
        # the incremental engine must re-route/re-extract their nets.
        for name, old_pos in before_pack.items():
            if placement.positions.get(name) == old_pos:
                continue
            inst = circuit.instances.get(name)
            if inst is not None:
                circuit.mark_nets_dirty(inst.conns.values())
    return placed
