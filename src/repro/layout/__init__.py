"""Layout generation: floorplan, placement, CTS, ECO, filler, routing."""

from repro.layout.cts import (
    ClockTree,
    MAX_CLUSTER_SINKS,
    synthesize_all_clock_trees,
    synthesize_clock_tree,
)
from repro.layout.defio import def_statistics, to_def
from repro.layout.detailed import refine_placement
from repro.layout.eco import desired_position, eco_place
from repro.layout.filler import FillerReport, insert_fillers
from repro.layout.floorplan import (
    CORE_MARGIN_UM,
    Floorplan,
    GROUND_RING_UM,
    IO_RING_UM,
    POWER_RING_UM,
    Row,
    build_floorplan,
)
from repro.layout.geometry import Point, Rect, hpwl, manhattan
from repro.layout.placement import Placement, global_place, repack_row
from repro.layout.routing import (
    CongestionReport,
    GCELL_UM,
    GlobalRouter,
    RoutedNet,
    RouteSegment,
)

__all__ = [
    "CORE_MARGIN_UM",
    "def_statistics",
    "refine_placement",
    "to_def",
    "ClockTree",
    "CongestionReport",
    "FillerReport",
    "Floorplan",
    "GCELL_UM",
    "GROUND_RING_UM",
    "GlobalRouter",
    "IO_RING_UM",
    "MAX_CLUSTER_SINKS",
    "POWER_RING_UM",
    "Placement",
    "Point",
    "Rect",
    "RoutedNet",
    "RouteSegment",
    "Row",
    "build_floorplan",
    "desired_position",
    "eco_place",
    "global_place",
    "hpwl",
    "insert_fillers",
    "manhattan",
    "repack_row",
    "synthesize_all_clock_trees",
    "synthesize_clock_tree",
]
