"""Layout generation: floorplan, placement, CTS, ECO, filler, routing.

Global placement is a pluggable strategy: engines implement the
:class:`Placer` protocol and live in the :data:`PLACERS` registry
(``"quadratic"`` is the default, ``"sa"`` adds simulated-annealing
detailed placement).  ``global_place`` remains importable for old
callers; it is a thin shim over the registered ``"quadratic"`` engine.
"""

from repro.layout.cts import (
    ClockTree,
    MAX_CLUSTER_SINKS,
    synthesize_all_clock_trees,
    synthesize_clock_tree,
)
from repro.layout.defio import def_statistics, to_def
from repro.layout.detailed import refine_placement
from repro.layout.eco import desired_position, eco_place
from repro.layout.filler import FillerReport, insert_fillers
from repro.layout.floorplan import (
    CORE_MARGIN_UM,
    Floorplan,
    GROUND_RING_UM,
    IO_RING_UM,
    POWER_RING_UM,
    Row,
    build_floorplan,
)
from repro.layout.geometry import Point, Rect, hpwl, manhattan
from repro.layout.placement import Placement, QuadraticPlacer, repack_row
from repro.layout.placer import (
    PLACERS,
    Placer,
    PlacerSpec,
    get_placer,
    global_place,
    placement_seed,
    register_placer,
    require_placer,
)
from repro.layout.sa import SimulatedAnnealingPlacer
from repro.layout.routing import (
    CongestionReport,
    GCELL_UM,
    GlobalRouter,
    RoutedNet,
    RouteSegment,
)

__all__ = [
    "CORE_MARGIN_UM",
    "def_statistics",
    "refine_placement",
    "to_def",
    "ClockTree",
    "CongestionReport",
    "FillerReport",
    "Floorplan",
    "GCELL_UM",
    "GROUND_RING_UM",
    "GlobalRouter",
    "IO_RING_UM",
    "MAX_CLUSTER_SINKS",
    "PLACERS",
    "POWER_RING_UM",
    "Placement",
    "Placer",
    "PlacerSpec",
    "Point",
    "QuadraticPlacer",
    "SimulatedAnnealingPlacer",
    "Rect",
    "RoutedNet",
    "RouteSegment",
    "Row",
    "build_floorplan",
    "desired_position",
    "eco_place",
    "get_placer",
    "global_place",
    "hpwl",
    "insert_fillers",
    "manhattan",
    "placement_seed",
    "register_placer",
    "repack_row",
    "require_placer",
    "synthesize_all_clock_trees",
    "synthesize_clock_tree",
]
