"""Congestion-aware global routing.

The router works on a grid of gcells over the core (plus the ring area,
which the paper notes is exploited for routing when the chip is forced
square).  Every net is decomposed into a rectilinear spanning tree
(Prim MST over its pins); each tree edge is embedded as an L-shape (or,
when both Ls are congested, the better Z-shape), and demand is recorded
against per-direction edge capacities derived from the metal stack's
track pitches and signal fractions.

Layer assignment is length-based: short connections ride the thin lower
signal pair (M2/M3), long connections the faster M4/M5 pair — giving
the RC extractor per-segment layers without detailed track assignment.

Outputs per net: the routed segments with layers and the total
wirelength; globally: total wirelength (Table 2's L_wires) and a
congestion summary (the reason p26909 runs at 50% utilisation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.library.cell import ROW_HEIGHT_UM
from repro.library.layers import MetalLayer, metal_stack_130nm, signal_layers
from repro.layout.geometry import Point, manhattan
from repro.layout.placement import Placement
from repro.netlist.circuit import Circuit
from repro.netlist.net import PORT

#: Edge length of one gcell, in um (four rows tall).
GCELL_UM = 4 * ROW_HEIGHT_UM

#: Segments at or below this length route on the lower metal pair.
LOWER_LAYER_LIMIT_UM = 60.0


@dataclass(frozen=True)
class RouteSegment:
    """One rectilinear routed segment.

    Attributes:
        x0, y0, x1, y1: Endpoints in um (axis-aligned).
        layer: Metal layer index (1-based).
    """

    x0: float
    y0: float
    x1: float
    y1: float
    layer: int

    @property
    def length_um(self) -> float:
        """Segment length."""
        return abs(self.x1 - self.x0) + abs(self.y1 - self.y0)

    @property
    def horizontal(self) -> bool:
        """True for horizontal segments."""
        return self.y0 == self.y1


@dataclass
class RoutedNet:
    """Routing result for one net.

    Attributes:
        net: Net name.
        segments: Routed segments.
        wirelength_um: Total routed length.
    """

    net: str
    segments: List[RouteSegment] = field(default_factory=list)
    wirelength_um: float = 0.0


@dataclass
class CongestionReport:
    """Summary of routing congestion.

    Attributes:
        max_utilization: Worst edge demand / capacity.
        mean_utilization: Average over used edges.
        overflowed_edges: Edges above capacity after rip-up.
        total_wirelength_um: Sum over all nets (Table 2's L_wires).
    """

    max_utilization: float
    mean_utilization: float
    overflowed_edges: int
    total_wirelength_um: float


class GlobalRouter:
    """Grid-based global router for one placement.

    Args:
        circuit: Netlist to route.
        placement: Legalised placement (positions per instance).
        stack: Metal stack (defaults to the 130 nm six-layer stack).
    """

    def __init__(self, circuit: Circuit, placement: Placement,
                 stack: Optional[List[MetalLayer]] = None):
        self.circuit = circuit
        self.placement = placement
        self.plan = placement.plan
        self.stack = stack or metal_stack_130nm()

        chip = self.plan.chip
        self.nx = max(1, int(math.ceil(chip.width / GCELL_UM)))
        self.ny = max(1, int(math.ceil(chip.height / GCELL_UM)))

        # Capacity per gcell edge, by direction.
        cap_h = cap_v = 0.0
        for layer in signal_layers(self.stack):
            tracks = GCELL_UM / layer.pitch_um * layer.signal_fraction
            if layer.direction == "H":
                cap_h += tracks
            else:
                cap_v += tracks
        self.cap_h = max(1.0, cap_h)
        self.cap_v = max(1.0, cap_v)
        # Demand maps keyed by (gx, gy) of the edge's lower-left gcell.
        self.use_h: Dict[Tuple[int, int], float] = {}
        self.use_v: Dict[Tuple[int, int], float] = {}
        self.routed: Dict[str, RoutedNet] = {}

    # ------------------------------------------------------------------
    def _gcell(self, point: Point) -> Tuple[int, int]:
        gx = min(self.nx - 1, max(0, int(point[0] / GCELL_UM)))
        gy = min(self.ny - 1, max(0, int(point[1] / GCELL_UM)))
        return gx, gy

    def _pin_points(self, net_name: str) -> List[Point]:
        net = self.circuit.nets[net_name]
        refs = list(net.sinks)
        if net.driver is not None:
            refs.append(net.driver)
        points = []
        for inst, pin in refs:
            if inst == PORT:
                pos = self.plan.pad_positions.get(pin)
            else:
                pos = self.placement.positions.get(inst)
            if pos is not None:
                points.append(pos)
        return points

    # ------------------------------------------------------------------
    def route_all(self, rip_up_passes: int = 1) -> CongestionReport:
        """Route every net; returns the final congestion summary."""
        with obs.span("global_route") as sp:
            net_names = sorted(self.circuit.nets)
            for name in net_names:
                self._route_net(name)
            sp.counter("nets_routed", len(net_names))
            for _ in range(rip_up_passes):
                victims = self._overflowed_nets()
                if not victims:
                    break
                sp.counter("ripup_iterations")
                sp.counter("ripped_nets", len(victims))
                for name in victims:
                    self._unroute(name)
                # Re-route congested nets last, against the updated map.
                for name in victims:
                    self._route_net(name)
            report = self.report()
            sp.gauge("overflowed_edges", report.overflowed_edges)
            sp.gauge("max_utilization", report.max_utilization)
            return report

    def reroute(self, nets: Iterable[str],
                rip_up_passes: int = 1) -> CongestionReport:
        """Rip up and re-route only ``nets`` against the standing map.

        Stale demand of the listed nets (and of nets that no longer
        exist in the circuit) is released first, then each listed net
        is re-routed in sorted order — the same deterministic order
        :meth:`route_all` uses — against the congestion left by every
        untouched net.  A final rip-up pass repairs any overflow the
        new routes introduced.

        Args:
            nets: Net names to re-route (typically the circuit's dirty
                set); unknown names are ignored.
            rip_up_passes: Overflow-repair passes after re-routing.

        Returns:
            Congestion summary over the whole design.
        """
        with obs.span("global_reroute") as sp:
            for name in [
                n for n in self.routed if n not in self.circuit.nets
            ]:
                self._unroute(name)
            todo = sorted(n for n in nets if n in self.circuit.nets)
            for name in todo:
                self._unroute(name)
            for name in todo:
                self._route_net(name)
            sp.counter("rerouted_nets", len(todo))
            for _ in range(rip_up_passes):
                victims = self._overflowed_nets()
                if not victims:
                    break
                sp.counter("ripup_iterations")
                sp.counter("ripped_nets", len(victims))
                for name in victims:
                    self._unroute(name)
                for name in victims:
                    self._route_net(name)
            report = self.report()
            sp.gauge("overflowed_edges", report.overflowed_edges)
            sp.gauge("max_utilization", report.max_utilization)
            return report

    def _route_net(self, net_name: str) -> None:
        points = self._pin_points(net_name)
        routed = RoutedNet(net=net_name)
        self.routed[net_name] = routed
        if len(points) < 2:
            return
        # Prim MST over Manhattan distance.
        in_tree = [0]
        edges: List[Tuple[Point, Point]] = []
        best: List[Tuple[float, int]] = [
            (manhattan(points[0], p), 0) for p in points
        ]
        remaining = set(range(1, len(points)))
        while remaining:
            nxt = min(remaining, key=lambda i: best[i][0])
            parent = best[nxt][1]
            edges.append((points[parent], points[nxt]))
            remaining.discard(nxt)
            for i in remaining:
                d = manhattan(points[nxt], p := points[i])
                if d < best[i][0]:
                    best[i] = (d, nxt)
        for a, b in edges:
            self._route_edge(routed, a, b)
        routed.wirelength_um = sum(s.length_um for s in routed.segments)

    def _route_edge(self, routed: RoutedNet, a: Point, b: Point) -> None:
        """Embed one tree edge as the cheapest L- or Z-shape.

        Both L-shapes are always evaluated; when the better L crosses
        an overflowed edge, the two mid-point Z-shapes join the
        contest, which is what gives the rip-up pass room to move nets
        out of hot spots.
        """
        if a == b:
            return
        candidates: List[List[Point]] = [
            [a, (b[0], a[1]), b],
            [a, (a[0], b[1]), b],
        ]
        costs = [self._route_cost(path) for path in candidates]
        best = min(costs)
        detour_threshold = manhattan(a, b) / GCELL_UM + 1e-9
        if best > detour_threshold and a[0] != b[0] and a[1] != b[1]:
            mx = (a[0] + b[0]) / 2.0
            my = (a[1] + b[1]) / 2.0
            candidates.append([a, (mx, a[1]), (mx, b[1]), b])
            candidates.append([a, (a[0], my), (b[0], my), b])
            costs += [self._route_cost(p) for p in candidates[2:]]
        path = candidates[costs.index(min(costs))]
        for p, q in zip(path, path[1:]):
            if p == q:
                continue
            seg = self._make_segment(p, q)
            routed.segments.append(seg)
            self._record(seg, +1.0)

    def _route_cost(self, path: List[Point]) -> float:
        """Congestion-aware cost of a rectilinear point sequence."""
        return sum(
            self._path_cost(p, q) for p, q in zip(path, path[1:])
            if p != q
        )

    def _make_segment(self, p: Point, q: Point) -> RouteSegment:
        length = manhattan(p, q)
        horizontal = p[1] == q[1]
        if length <= LOWER_LAYER_LIMIT_UM:
            layer = 3 if horizontal else 2
        else:
            layer = 5 if horizontal else 4
        return RouteSegment(p[0], p[1], q[0], q[1], layer)

    # -- congestion accounting ------------------------------------------
    def _edge_cells(self, seg_or_pq) -> Iterable[Tuple[str, Tuple[int, int]]]:
        """Grid edges crossed by a straight segment."""
        if isinstance(seg_or_pq, RouteSegment):
            p = (seg_or_pq.x0, seg_or_pq.y0)
            q = (seg_or_pq.x1, seg_or_pq.y1)
        else:
            p, q = seg_or_pq
        (gx0, gy0), (gx1, gy1) = self._gcell(p), self._gcell(q)
        if gy0 == gy1:
            lo, hi = sorted((gx0, gx1))
            for gx in range(lo, hi):
                yield "h", (gx, gy0)
        elif gx0 == gx1:
            lo, hi = sorted((gy0, gy1))
            for gy in range(lo, hi):
                yield "v", (gx0, gy)

    def _record(self, seg: RouteSegment, delta: float) -> None:
        for kind, key in self._edge_cells(seg):
            store = self.use_h if kind == "h" else self.use_v
            store[key] = store.get(key, 0.0) + delta

    def _path_cost(self, p: Point, q: Point) -> float:
        """Congestion-aware cost of a straight run from ``p`` to ``q``."""
        cost = manhattan(p, q) / GCELL_UM
        for kind, key in self._edge_cells((p, q)):
            store, cap = (
                (self.use_h, self.cap_h) if kind == "h"
                else (self.use_v, self.cap_v)
            )
            over = (store.get(key, 0.0) + 1.0) / cap
            if over > 1.0:
                cost += 8.0 * (over - 1.0)
        return cost

    def _unroute(self, net_name: str) -> None:
        routed = self.routed.pop(net_name, None)
        if routed is None:
            return
        for seg in routed.segments:
            self._record(seg, -1.0)

    def _overflowed_nets(self) -> List[str]:
        """Nets crossing at least one over-capacity edge."""
        bad_h = {
            key for key, use in self.use_h.items() if use > self.cap_h
        }
        bad_v = {
            key for key, use in self.use_v.items() if use > self.cap_v
        }
        if not bad_h and not bad_v:
            return []
        victims = []
        for name, routed in self.routed.items():
            for seg in routed.segments:
                hit = False
                for kind, key in self._edge_cells(seg):
                    if (kind == "h" and key in bad_h) or (
                        kind == "v" and key in bad_v
                    ):
                        victims.append(name)
                        hit = True
                        break
                if hit:
                    break
        return victims

    # ------------------------------------------------------------------
    def report(self) -> CongestionReport:
        """Current congestion summary."""
        utils = [u / self.cap_h for u in self.use_h.values()]
        utils += [u / self.cap_v for u in self.use_v.values()]
        overflow = sum(1 for u in utils if u > 1.0)
        # Sum in sorted-name order so the float total is independent
        # of dict insertion order (route_all vs. later reroute calls).
        total = sum(
            self.routed[name].wirelength_um for name in sorted(self.routed)
        )
        return CongestionReport(
            max_utilization=max(utils) if utils else 0.0,
            mean_utilization=(sum(utils) / len(utils)) if utils else 0.0,
            overflowed_edges=overflow,
            total_wirelength_um=total,
        )
