"""Bench: incremental vs. full ECO timing closure.

Runs the same multi-round hold-fix flow twice — once with the scoped
re-route / re-extract / re-STA engine (the default) and once with
``incremental_eco=False`` (full recompute every round) — and records
the STA-stage and whole-flow wall clock of each.  A hardened hold
margin forces several ECO rounds, the regime the paper's closure loop
lives in.  The artifact `BENCH_incremental_eco.json` keeps the
speedup alongside the equivalence evidence (identical wirelength,
T_cp and hold census), mirroring the flow's invariant: the fast path
must change nothing but the runtime.
"""

from __future__ import annotations

import json
import time

import pytest
from conftest import write_artifact
from repro.circuits import s38417_like
from repro.core import FlowConfig, run_flow
from repro.library import cmos130
from repro.sta import StaConfig

#: Big enough for several hold-fix rounds, small enough for a bench.
SCALE = 0.08
HOLD_MARGIN_PS = 1000.0


def _run(incremental: bool) -> dict:
    circuit = s38417_like(scale=SCALE)
    config = FlowConfig(
        tp_percent=5.0,
        run_atpg_phase=False,
        incremental_eco=incremental,
        hold_fix_iterations=8,
        sta=StaConfig(hold_margin_ps=HOLD_MARGIN_PS),
    )
    t0 = time.perf_counter()
    result = run_flow(circuit, cmos130(), config)
    wall_s = time.perf_counter() - t0
    critical = result.sta.critical("clk")
    return {
        "incremental": incremental,
        "wall_s": wall_s,
        "sta_stage_s": result.stage_seconds["sta"],
        "eco_cts_route_s": result.stage_seconds["eco_cts_route"],
        "hold_fix_rounds": len(result.hold_fix_rounds),
        "buffers_inserted": sum(
            r.buffers_inserted for r in result.hold_fix_rounds
        ),
        "hold_violations_left": result.sta.hold_violations,
        "wirelength_um": result.congestion.total_wirelength_um,
        "t_cp_ps": critical.total_ps if critical else None,
    }


def test_incremental_eco_speedup(out_dir, benchmark):
    incr = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    full = _run(False)

    payload = {
        "scale": SCALE,
        "hold_margin_ps": HOLD_MARGIN_PS,
        "incremental": incr,
        "full": full,
        "sta_stage_speedup": full["sta_stage_s"] / incr["sta_stage_s"],
    }
    write_artifact(out_dir, "BENCH_incremental_eco.json",
                   json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nsta stage: full {full['sta_stage_s']:.3f}s vs "
          f"incremental {incr['sta_stage_s']:.3f}s "
          f"({payload['sta_stage_speedup']:.2f}x), "
          f"{incr['hold_fix_rounds']} hold-fix rounds")

    # The loop must genuinely iterate for the comparison to mean much.
    assert incr["hold_fix_rounds"] >= 2
    assert incr["hold_fix_rounds"] == full["hold_fix_rounds"]
    assert incr["buffers_inserted"] == full["buffers_inserted"]
    # Equivalence gate: the fast path changes runtime, not results.
    # Wirelength is exact (route shapes are Manhattan-monotone either
    # way); T_cp tolerates the ppm-level drift a warm congestion map
    # can introduce into individual route-shape choices at this scale.
    assert incr["wirelength_um"] == pytest.approx(
        full["wirelength_um"], rel=1e-9
    )
    assert incr["t_cp_ps"] == pytest.approx(full["t_cp_ps"], rel=1e-4)
    assert incr["hold_violations_left"] == full["hold_violations_left"]
    # And it must actually be faster where the engine applies.
    assert incr["sta_stage_s"] < full["sta_stage_s"]
