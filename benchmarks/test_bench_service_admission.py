"""Bench: submit-path latency of the sweep daemon's admission control.

Writes ``benchmarks/out/BENCH_service_admission.json`` — p50/p99 of
the POST /sweeps round trip in the two admission regimes:

* **accept** — the pending queue has headroom; the submit pays for
  spec validation, the coalescing scan, and the durable job store's
  fsync before the 202 comes back.
* **reject** — the queue is at ``max_pending``; the submit is shed
  with 429 + ``Retry-After`` *before* any durable write, so shedding
  must be cheap precisely when the daemon is busiest.

The record doubles as a ``repro_bench_stages`` benchtrack record (the
latencies live under ``stages``), so CI can gate it with
``python -m repro.obs.benchtrack compare`` exactly like the sweep
stage benches — self-comparison must pass, an inflated copy must not.
"""

from __future__ import annotations

import json
import time

from conftest import write_artifact
from repro.obs import benchtrack as bt
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    SweepRequest,
)

#: Fast ATPG knobs: bench the service path, not PODEM.
FAST_ATPG = {"seed": 7, "backtrack_limit": 24, "max_deterministic": 60,
             "abort_recovery_blocks": 4, "second_chance_factor": 1}
SCALE = 0.012
SAMPLES = 40


def _request(i, tp_percents):
    # Distinct names keep the specs distinct: no submit coalesces, so
    # every sample pays the full admission + store-fsync path.
    return SweepRequest(circuit="s38417", scale=SCALE,
                        tp_percents=tp_percents,
                        options={"atpg": FAST_ATPG},
                        name=f"admission-{i}")


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       int(round(q * (len(ordered) - 1))))]


def _occupy_worker(client):
    """Park the single job worker on a long sweep and wait until the
    queue is empty again (the blocker has been dequeued)."""
    blocker = client.submit(_request("blocker", (0.0, 1.0, 2.0, 3.0)))
    while client.status(blocker.id)["state"] == "queued":
        time.sleep(0.01)
    return blocker


def _measure_accepts(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path / "accept"),
                           job_workers=1, max_pending=SAMPLES + 8)
    latencies = []
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0,
                               retries=0)
        _occupy_worker(client)
        accepted = []
        for i in range(SAMPLES):
            request = _request(i, (5.0,))
            t0 = time.perf_counter()
            record = client.submit(request)
            latencies.append(time.perf_counter() - t0)
            accepted.append(record.id)
        for job_id in accepted:    # nothing queued actually runs
            client.cancel(job_id)
    return latencies


def _measure_rejects(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path / "reject"),
                           job_workers=1, max_pending=1)
    latencies = []
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0,
                               retries=0)
        _occupy_worker(client)
        filler = client.submit(_request("filler", (4.0,)))  # queue full
        for i in range(SAMPLES):
            wire = _request(i, (5.0,)).to_wire()
            t0 = time.perf_counter()
            status, _payload, retry_after = client._request_once(
                "POST", "/sweeps", body=wire)
            latencies.append(time.perf_counter() - t0)
            assert status == 429, status
            assert retry_after is not None and retry_after >= 1
        client.cancel(filler.id)
    return latencies


def test_service_admission_latency(tmp_path, out_dir):
    accept = _measure_accepts(tmp_path)
    reject = _measure_rejects(tmp_path)

    stages = {
        "submit_accept_p50": _percentile(accept, 0.50),
        "submit_accept_p99": _percentile(accept, 0.99),
        "submit_reject_p50": _percentile(reject, 0.50),
        "submit_reject_p99": _percentile(reject, 0.99),
    }
    # Sanity, deliberately loose (CI machines are noisy): the whole
    # submit path — fsync included — stays well under a second, and
    # shedding is never an order of magnitude dearer than accepting.
    assert stages["submit_accept_p99"] < 1.0, stages
    assert stages["submit_reject_p99"] < 1.0, stages

    record = {
        "kind": bt.RECORD_KIND,
        "version": bt.RECORD_VERSION,
        "circuit": "service",
        "scale": SCALE,
        "placer": "n/a",
        "tp_percents": [],
        "samples": SAMPLES,
        "stages": stages,
        "wall_s": sum(stages.values()),
    }
    # The committed artifact stays usable as a benchtrack operand.
    assert bt.check_regressions(record, record) == []

    write_artifact(out_dir, "BENCH_service_admission.json",
                   json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(f"admission latency over {SAMPLES} samples: "
          f"accept p50={stages['submit_accept_p50'] * 1e3:.2f}ms "
          f"p99={stages['submit_accept_p99'] * 1e3:.2f}ms | "
          f"reject p50={stages['submit_reject_p50'] * 1e3:.2f}ms "
          f"p99={stages['submit_reject_p99'] * 1e3:.2f}ms")
