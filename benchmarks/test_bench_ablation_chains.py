"""Ablation bench: scan-chain count vs TDV/TAT (paper Section 4.2).

Table 1's TDV/TAT columns follow equations (1) and (2); the paper notes
their reductions are slightly smaller than the raw pattern reduction
because each pattern's data grows with the inserted flip-flops.  This
bench sweeps the chain count at a fixed flip-flop budget and prints the
resulting series, verifying the structural behaviour of the equations:

* TAT falls roughly as 1/n with the chain count (shift depth shrinks);
* TDV is nearly flat (more chains, shorter shifts — same bits), rising
  only through the per-pattern rounding overhead;
* adding test points (more FFs) raises both at constant pattern count.
"""

from __future__ import annotations

import math

from conftest import write_artifact
from repro.core import (
    test_application_time_cycles,
    test_data_volume_bits,
)

FFS = 1652          # s38417 + 1% TPs
PATTERNS = 400


def test_ablation_chain_count(out_dir, benchmark):
    def series():
        rows = []
        for n_chains in (1, 2, 4, 8, 16, 32, 64):
            l_max = math.ceil(FFS / n_chains)
            rows.append((
                n_chains,
                l_max,
                test_data_volume_bits(n_chains, l_max, PATTERNS),
                test_application_time_cycles(n_chains, l_max, PATTERNS),
            ))
        return rows

    rows = benchmark(series)
    lines = [
        f"Chain-count ablation at {FFS} FFs, {PATTERNS} patterns",
        f"{'#chains':>8} {'l_max':>6} {'TDV(bits)':>12} {'TAT(cycles)':>12}",
    ]
    for n, l, tdv, tat in rows:
        lines.append(f"{n:>8} {l:>6} {tdv:>12} {tat:>12}")
    text = "\n".join(lines)
    write_artifact(out_dir, "ablation_chains.txt", text)
    print(text)

    # TAT scales ~1/n; TDV stays within rounding of constant.
    tats = [row[3] for row in rows]
    assert tats[-1] < tats[0] / 16
    tdvs = [row[2] for row in rows]
    assert max(tdvs) < 1.2 * min(tdvs)

    # More flip-flops (test points) => more data and time per pattern.
    bigger = test_data_volume_bits(16, math.ceil((FFS + 80) / 16),
                                   PATTERNS)
    assert bigger > test_data_volume_bits(16, math.ceil(FFS / 16),
                                          PATTERNS)
