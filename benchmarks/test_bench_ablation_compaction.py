"""Ablation bench: dynamic compaction (the design choice behind the
pattern counts).

The paper's ATPG (Geuzebroek et al., "Test Point Insertion for Compact
Test Sets") reduces pattern counts through dynamic compaction: several
targets merged per pattern.  This bench switches the merge stage off
(one target per pattern, random fill only) and quantifies how much of
the compact test set the merging is worth — the knob DESIGN.md calls
out as the mechanism coupling TPI to the pattern count.
"""

from __future__ import annotations

from conftest import write_artifact
from repro.atpg import AtpgConfig, run_atpg
from repro.circuits import s38417_like
from repro.library import cmos130
from repro.scan import insert_scan

SCALE = 0.05


def _run(merge_limit: int):
    circuit = s38417_like(scale=SCALE)
    insert_scan(circuit, cmos130(), max_chain_length=100)
    return run_atpg(circuit, config=AtpgConfig(
        seed=17, backtrack_limit=48, merge_limit=merge_limit,
    ))


def test_ablation_dynamic_compaction(out_dir, benchmark):
    merged = benchmark.pedantic(lambda: _run(12), rounds=1, iterations=1)
    unmerged = _run(1)

    lines = [
        "Dynamic-compaction ablation (multi-target merge per pattern)",
        f"  merge_limit=12: {merged.n_patterns} patterns, "
        f"FC {100 * merged.fault_coverage:.2f}%",
        f"  merge_limit=1 : {unmerged.n_patterns} patterns, "
        f"FC {100 * unmerged.fault_coverage:.2f}%",
    ]
    text = "\n".join(lines)
    write_artifact(out_dir, "ablation_compaction.txt", text)
    print(text)

    # Merging never hurts the pattern count materially and the two
    # configurations reach comparable coverage.
    assert merged.n_patterns <= unmerged.n_patterns * 1.05
    assert abs(merged.fault_coverage - unmerged.fault_coverage) < 0.02
