"""Extension bench: TPI combined with deterministic LBIST (Section 5).

The paper's closing recommendation: excluding test points from critical
paths costs coverage, so "for LBIST, the combination of TPI with DLBIST
is therefore attractive" — the deterministic bit-flipping shell
restores full coverage while test points keep the shell small.  This
bench prices that combination: pseudo-random coverage, final coverage
and estimated bit-flip-function area with and without test points,
reproducing the companion paper's claim that TPI + DLBIST needs less
silicon than either technique alone.
"""

from __future__ import annotations

from conftest import write_artifact
from repro.circuits import s38417_like
from repro.lbist import DlbistConfig, run_dlbist
from repro.library import cmos130
from repro.scan import insert_scan
from repro.tpi import TpiConfig, insert_test_points

SCALE = 0.05
PATTERNS = 2048
TSFF_AREA_UM2 = 45.4  # one TSFF of the 130 nm-class library


def _session(tp_percent: float):
    circuit = s38417_like(scale=SCALE)
    n_tp = 0
    if tp_percent:
        n_tp = round(tp_percent / 100 * circuit.num_flip_flops)
        insert_test_points(circuit, cmos130(), TpiConfig(
            n_test_points=n_tp,
        ))
    insert_scan(circuit, cmos130(), max_chain_length=100)
    return n_tp, run_dlbist(circuit, DlbistConfig(n_patterns=PATTERNS))


def test_dlbist_with_and_without_test_points(out_dir, benchmark):
    _, base = _session(0.0)
    n_tp, boosted = benchmark.pedantic(
        lambda: _session(2.0), rounds=1, iterations=1,
    )

    tp_area = n_tp * TSFF_AREA_UM2
    lines = [
        f"TPI + bit-flipping DLBIST ({PATTERNS} pseudo-random patterns)",
        f"{'':<14}{'pseudo FC':>10}{'final FC':>10}{'cubes':>7}"
        f"{'flips':>7}{'BFF um2':>9}{'DFT um2':>9}",
        (
            f"{'no TPs':<14}{100 * base.pseudo_random_coverage:>9.2f}%"
            f"{100 * base.final_coverage:>9.2f}%{base.n_cubes:>7}"
            f"{base.n_flips:>7}{base.bff_area_um2:>9.0f}"
            f"{base.bff_area_um2:>9.0f}"
        ),
        (
            f"{'2% TPs':<14}{100 * boosted.pseudo_random_coverage:>9.2f}%"
            f"{100 * boosted.final_coverage:>9.2f}%{boosted.n_cubes:>7}"
            f"{boosted.n_flips:>7}{boosted.bff_area_um2:>9.0f}"
            f"{boosted.bff_area_um2 + tp_area:>9.0f}"
        ),
    ]
    text = "\n".join(lines)
    write_artifact(out_dir, "dlbist_tpi.txt", text)
    print(text)

    # Test points lift the pseudo-random floor and shrink the
    # deterministic top-up (fewer cubes, fewer flips, smaller BFF).
    assert boosted.pseudo_random_coverage > base.pseudo_random_coverage
    assert boosted.n_flips < base.n_flips
    assert boosted.bff_area_um2 < base.bff_area_um2
    # Both reach comparable final coverage — the DLBIST promise.
    assert abs(boosted.final_coverage - base.final_coverage) < 0.02
