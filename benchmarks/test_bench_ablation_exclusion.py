"""Ablation bench: timing-aware test-point exclusion (paper Section 5).

The paper discusses excluding test points from paths with small slack:
"our results show that this approach is feasible, but it requires
timing analysis ... Excluding test points from critical paths lowers
the positive effects of TPI."  This bench quantifies both halves of
that sentence on one circuit:

* the timing-aware variant places no test points on the baseline
  near-critical paths;
* its residual hard-fault population is at least as large as the
  unconstrained variant's (the testability price).
"""

from __future__ import annotations

from conftest import write_artifact
from repro.circuits import s38417_like
from repro.core import FlowConfig, run_flow
from repro.library import cmos130
from repro.sta import StaConfig
from repro.tpi import critical_nets

SCALE = 0.06
TP_PERCENT = 3.0


def _flow(exclude=frozenset()):
    return run_flow(s38417_like(scale=SCALE), cmos130(), FlowConfig(
        tp_percent=TP_PERCENT,
        exclude_nets=exclude,
        run_atpg_phase=False,
    ))


def test_ablation_timing_aware_exclusion(out_dir, benchmark):
    # Baseline layout for path discovery.
    baseline = run_flow(s38417_like(scale=SCALE), cmos130(), FlowConfig(
        tp_percent=0.0, run_atpg_phase=False,
        sta=StaConfig(paths_per_domain=400),
    ))
    worst = baseline.sta.worst_path()
    threshold = worst.slack_ps + max(200.0, 0.2 * worst.total_ps)
    excluded = frozenset(critical_nets(
        baseline.sta.all_paths(), slack_threshold_ps=threshold,
    ))

    unconstrained = _flow()
    aware = benchmark.pedantic(
        lambda: _flow(excluded), rounds=1, iterations=1,
    )

    lines = [
        "Timing-aware TPI ablation (paper Section 5)",
        f"  baseline T_cp: {worst.total_ps:.0f} ps; "
        f"{len(excluded)} nets excluded",
    ]
    for label, run in (("unconstrained", unconstrained),
                       ("timing-aware", aware)):
        path = run.sta.worst_path()
        hard = run.tpi.hard_faults_after if run.tpi else 0
        lines.append(
            f"  {label:<14} T_cp {path.total_ps:7.0f} ps, "
            f"TPs inserted {run.n_test_points}, "
            f"hard faults left {hard}"
        )
    text = "\n".join(lines)
    write_artifact(out_dir, "ablation_exclusion.txt", text)
    print(text)

    # The exclusion is honoured.
    for record in aware.tpi.inserted:
        assert record.net not in excluded
    # Testability price: the constrained run leaves at least as many
    # hard faults behind.
    assert (
        aware.tpi.hard_faults_after
        >= unconstrained.tpi.hard_faults_after
    )
