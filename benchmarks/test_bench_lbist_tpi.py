"""Extension bench: TPI with pseudo-random LBIST (paper Section 2).

The paper motivates TPI through LBIST: pseudo-random patterns alone
leave random-pattern-resistant faults undetected, and test points exist
to fix exactly that.  This bench regenerates the classic motivation
plot — pseudo-random fault coverage vs applied patterns, with and
without test points — and checks the two findings the cited case
studies (Gu et al. ITC'01, Hetherington et al. ITC'99) report:

* test points raise the achievable pseudo-random coverage markedly;
* the coverage advantage appears early and persists across the run.
"""

from __future__ import annotations

from conftest import write_artifact
from repro.circuits import s38417_like
from repro.lbist import LbistConfig, coverage_at, run_lbist
from repro.library import cmos130
from repro.scan import insert_scan
from repro.tpi import TpiConfig, insert_test_points

SCALE = 0.06
PATTERNS = 4096


def _session(tp_percent: float):
    circuit = s38417_like(scale=SCALE)
    if tp_percent:
        insert_test_points(circuit, cmos130(), TpiConfig(
            n_test_points=round(
                tp_percent / 100 * circuit.num_flip_flops
            ),
        ))
    insert_scan(circuit, cmos130(), max_chain_length=100)
    return run_lbist(circuit, LbistConfig(n_patterns=PATTERNS))


def test_lbist_with_and_without_test_points(out_dir, benchmark):
    base = _session(0.0)
    boosted = benchmark.pedantic(
        lambda: _session(2.0), rounds=1, iterations=1,
    )

    lines = [
        f"Pseudo-random LBIST coverage vs patterns ({PATTERNS} max)",
        f"{'patterns':>9}  {'FC no TPs':>10}  {'FC 2% TPs':>10}",
    ]
    for n in (64, 256, 1024, PATTERNS):
        lines.append(
            f"{n:>9}  {100 * coverage_at(base, n):>9.2f}%"
            f"  {100 * coverage_at(boosted, n):>9.2f}%"
        )
    lines.append(
        f"signatures: base {base.signature:#010x}, "
        f"2% TPs {boosted.signature:#010x}"
    )
    text = "\n".join(lines)
    write_artifact(out_dir, "lbist_tpi.txt", text)
    print(text)

    # Test points lift pseudo-random coverage clearly (Section 2).
    assert boosted.fault_coverage > base.fault_coverage + 0.03
    # The advantage shows up early in the run too.
    assert coverage_at(boosted, 256) > coverage_at(base, 256)
    # Both coverage curves are monotone.
    for result in (base, boosted):
        covs = [c for _, c in result.coverage_curve]
        assert covs == sorted(covs)
