"""Bench: paper Figure 1 — the transparent scan flip-flop.

Prints the TSFF's behavioural table in all four operating modes
(application / scan shift / scan capture / scan flush) and verifies the
library cell realises exactly that behaviour.  The benchmark times the
compiled three-valued evaluation of the TSFF bypass function — the
operation PODEM performs millions of times per ATPG run.
"""

from __future__ import annotations

import itertools

from conftest import write_artifact
from repro.atpg.threeval import compile_node3, decode, encode
from repro.library import STATE_PIN, cmos130
from repro.tpi import ALL_MODES, mode_table, tsff_output


def test_figure1(out_dir, benchmark):
    lib = cmos130()
    tsff = lib["TSFF_X1"]

    lines = ["TSFF operating modes (paper Fig. 1): Q per (D, TI, state)"]
    table = mode_table()
    for mode in ALL_MODES:
        rows = table[mode.name]
        lines.append(
            f"  {mode.name:<13} TE={mode.te} TR={mode.tr}  " + "  ".join(
                f"{key}->{value}" for key, value in sorted(rows.items())
            )
        )
    # Timing facts the paper highlights.
    mux = lib["MUX2_X1"].arc("A", "Z").delay.lookup(40.0, 10.0).value
    passthrough = tsff.arc("D", "Q").delay.lookup(40.0, 10.0).value
    lines.append(
        f"  application-mode D->Q delay: {passthrough:.0f} ps "
        f"(>= two mux delays, 2 x {mux:.0f} ps)"
    )
    text = "\n".join(lines)
    write_artifact(out_dir, "figure1_tsff.txt", text)
    print(text)

    # Library-vs-reference equivalence over all 32 input combinations.
    pins = ["D", "TI", "TE", "TR", STATE_PIN]
    index = {p: i for i, p in enumerate(pins)}
    fn = compile_node3(tsff.sequential.bypass, index)
    cases = list(itertools.product((0, 1), repeat=5))

    def evaluate_all():
        out = []
        for d, ti, te, tr, state in cases:
            values = [encode(d), encode(ti), encode(te), encode(tr),
                      encode(state)]
            out.append(decode(fn(values)))
        return out

    got = benchmark(evaluate_all)
    want = [tsff_output(d, ti, te, tr, s)
            for d, ti, te, tr, s in cases]
    assert got == want
    assert passthrough >= 1.5 * mux
