"""Bench: paper Table 2 — impact of TPI on silicon area.

Regenerates the area rows per circuit and sweep level: #cells, #rows,
total row length, core area (+%), filler-cell share, chip area (+%) and
routed wirelength.  Shape assertions encode the paper's findings:

* core and chip area increase nearly linearly with the number of
  inserted test points, and the increase is small (sub-percent per
  test-point percent at the paper's sizes);
* the cell count rises with every level (TSFFs plus support buffers);
* the chip stays square while the core may drift slightly rectangular,
  so the chip-area increase can exceed the core-area increase;
* wirelength stays in the same regime (separate from-scratch layouts
  may route slightly shorter, as the paper observes).
"""

from __future__ import annotations

from conftest import write_artifact
from repro.core import format_table2


def test_table2(circuit_sweep, out_dir, benchmark):
    result = circuit_sweep
    rows = benchmark.pedantic(
        result.table2_rows, rounds=1, iterations=1,
    )
    text = format_table2(rows)
    write_artifact(out_dir, f"table2_{result.name}.txt", text)
    print(text)

    base = rows[0]
    for row in rows[1:]:
        # Logic cells grow with every TSFF; the *total* count also
        # includes fillers, whose number varies with gap fragmentation,
        # so the strict monotonicity check uses the logic census and
        # the total only gets a coarse band.
        assert row["n_cells_logic"] >= base["n_cells_logic"]
        assert row["n_cells"] >= 0.95 * base["n_cells"]
        assert row["core_area_um2"] >= base["core_area_um2"] - 1e-6

    top = rows[-1]
    # Area grows with test points, but stays bounded: the TSFF overhead
    # is a few percent of the core even at 5% TPs on scaled circuits.
    assert 0.0 <= top["core_inc_percent"] <= 15.0
    assert 0.0 <= top["chip_inc_percent"] <= 20.0

    # Rough linearity: the area increase correlates with #TP (monotone
    # regression check over the sweep).
    incs = [r["core_inc_percent"] for r in rows]
    tps = [r["n_tp"] for r in rows]
    assert all(
        i2 >= i1 - 0.5
        for (t1, i1), (t2, i2) in zip(zip(tps, incs), zip(tps[1:], incs[1:]))
        if t2 > t1
    )

    # Filler share is a plausible single-digit fraction of the core.
    for row in rows:
        assert 0.0 <= row["filler_area_percent"] <= 60.0

    # Wirelength stays in the same regime across the sweep.
    for row in rows:
        assert row["wirelength_um"] > 0
        assert row["wirelength_um"] < 2.0 * base["wirelength_um"]
