"""Bench: paper Figure 2 — the tool flow.

Times one complete pass of the six-step flow (TPI & scan insertion,
floorplanning & placement, layout-driven scan reordering + ATPG, ECO
with clock trees and routing, extraction, STA) and prints the per-stage
breakdown, the reproduction of the flow diagram as executed stages.
"""

from __future__ import annotations

from conftest import write_artifact
from repro.atpg import AtpgConfig
from repro.circuits import s38417_like
from repro.core import FlowConfig, run_flow
from repro.library import cmos130

STAGES = (
    ("tpi_scan", "1. TPI & scan insertion"),
    ("floorplan_place", "2. Floorplanning & placement"),
    ("scan_reorder", "3. Layout-driven scan chain reordering"),
    ("eco_cts_route", "4. ECO + clock trees + routing"),
    ("extraction", "5. Layout extraction"),
    ("sta", "6. Static timing analysis"),
    ("atpg", "   ATPG (on the reordered netlist)"),
)


def test_figure2(out_dir, benchmark):
    def run_once():
        circuit = s38417_like(scale=0.04)
        return run_flow(circuit, cmos130(), FlowConfig(
            tp_percent=2.0,
            atpg=AtpgConfig(seed=9, backtrack_limit=32,
                            max_deterministic=400),
        ))

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)

    lines = ["Tool flow (paper Fig. 2) executed stages:"]
    for key, label in STAGES:
        seconds = result.stage_seconds.get(key, 0.0)
        lines.append(f"  {label:<42} {seconds:7.2f} s")
    text = "\n".join(lines)
    write_artifact(out_dir, "figure2_flow.txt", text)
    print(text)

    # Every stage executed and produced its artifact.
    assert set(k for k, _ in STAGES) <= set(result.stage_seconds)
    assert result.chains and result.plan and result.sta and result.atpg
    assert result.reorder is not None
    assert result.clock_trees
