"""Bench: placement-engine comparison and the quadratic-solve speedup.

Two artifacts land in ``benchmarks/out/``:

* ``BENCH_placer_stages.json`` — a ``repro.obs.benchtrack`` stage
  record of the default (quadratic) engine, with two extra sections:
  the same sweep under the ``"sa"`` engine, and the ``solver``
  microbench quantifying the numpy acceleration of the quadratic
  global place (the spring system is assembled once and reused across
  all four Gordian rounds instead of being rebuilt per round).  The
  top-level record is benchtrack-comparable: CI gates it with
  ``python -m repro.obs.benchtrack compare`` (self + inflated copy,
  never across machines).
* ``placer_engines.txt`` — the per-engine wirelength/runtime summary.

The speedup assertion is deliberately loose (cached assembly must not
be *slower* than per-round reassembly beyond timer noise): this bench
documents the win, the golden-table tests pin its bitwise safety.
"""

from __future__ import annotations

import json
import time

from conftest import write_artifact
from repro.circuits import s38417_like
from repro.layout import build_floorplan, get_placer, placement_seed
from repro.layout import placement as placement_mod
from repro.obs import benchtrack as bt

#: Fast ATPG knobs: bench the layout stages, not PODEM.
FAST_ATPG = {"seed": 7, "backtrack_limit": 24, "max_deterministic": 60,
             "abort_recovery_blocks": 4, "second_chance_factor": 1}

SOLVER_SCALE = 0.15  # ~4k cells: assembly dominates at this size


def _solver_microbench() -> dict:
    """Time one cached-assembly global place vs per-round reassembly."""
    circuit = s38417_like(scale=SOLVER_SCALE)
    plan = build_floorplan(circuit, target_utilization=0.97)
    movable = [inst.name for inst in circuit.instances.values()
               if not inst.cell.is_filler]
    index = {name: i for i, name in enumerate(movable)}

    t0 = time.perf_counter()
    placement_mod.global_place(circuit, plan)
    cached_s = time.perf_counter() - t0

    # The historical path assembled the springs from scratch in each
    # of the four Gordian rounds; measure that extra work directly.
    t0 = time.perf_counter()
    for _ in range(4):
        placement_mod._assemble_springs(circuit, plan, movable, index)
    reassembly_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    placement_mod._assemble_springs(circuit, plan, movable, index)
    one_assembly_s = time.perf_counter() - t0

    historical_s = cached_s + (reassembly_s - one_assembly_s)
    return {
        "n_cells": len(movable),
        "scale": SOLVER_SCALE,
        "global_place_cached_s": cached_s,
        "assembly_once_s": one_assembly_s,
        "assembly_four_rounds_s": reassembly_s,
        "global_place_reassembling_s": historical_s,
        "speedup": historical_s / cached_s if cached_s else 1.0,
    }


def test_placer_stage_record(out_dir):
    solver = _solver_microbench()
    # Cached assembly must never lose to rebuilding four times over
    # (1.25 headroom absorbs scheduler noise on loaded machines).
    assert (solver["global_place_cached_s"]
            <= solver["global_place_reassembling_s"] * 1.25)

    quad = bt.record_stages("s38417", scale=0.01,
                            tp_percents=(0.0, 2.0), atpg=FAST_ATPG)
    sa = bt.record_stages("s38417", scale=0.01, tp_percents=(0.0, 2.0),
                          atpg=FAST_ATPG, placer="sa")
    assert quad["placer"] == "quadratic" and sa["placer"] == "sa"
    # Self-comparison always passes: the committed record stays usable
    # as a benchtrack compare operand.
    assert bt.check_regressions(quad, quad) == []

    record = dict(quad)
    record["sa"] = {"stages": sa["stages"], "wall_s": sa["wall_s"]}
    record["solver"] = solver
    write_artifact(out_dir, "BENCH_placer_stages.json",
                   json.dumps(record, indent=1, sort_keys=True) + "\n")

    lines = [
        f"placement engines, s38417 scale=0.01 tp=(0,2):",
        f"  quadratic: floorplan_place "
        f"{quad['stages'].get('floorplan_place', 0.0):.3f}s "
        f"(wall {quad['wall_s']:.2f}s)",
        f"  sa:        floorplan_place "
        f"{sa['stages'].get('floorplan_place', 0.0):.3f}s "
        f"(wall {sa['wall_s']:.2f}s)",
        f"solver microbench, s38417 scale={SOLVER_SCALE} "
        f"({solver['n_cells']} cells):",
        f"  global place (assemble once):      "
        f"{solver['global_place_cached_s']:.3f}s",
        f"  global place (reassemble 4x, old): "
        f"{solver['global_place_reassembling_s']:.3f}s",
        f"  speedup: {solver['speedup']:.2f}x",
    ]
    write_artifact(out_dir, "placer_engines.txt", "\n".join(lines) + "\n")
    print("\n".join(lines))


def test_placer_engines_deterministic_quality(out_dir):
    """Both engines: one placement each, SA must not trail quadratic."""
    circuit = s38417_like(scale=0.05)
    results = {}
    for name in ("quadratic", "sa"):
        plan = build_floorplan(circuit, target_utilization=0.97)
        engine = get_placer(name)
        seed = placement_seed(circuit, name)
        placement = engine.place(circuit, plan, seed=seed)
        engine.refine(circuit, placement, passes=2, seed=seed)
        results[name] = placement.total_hpwl_um(circuit)
    assert results["sa"] <= results["quadratic"] * 1.02, results
