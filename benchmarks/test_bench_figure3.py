"""Bench: paper Figure 3 — layout after floorplanning, placement, routing.

Renders the three stages of one layout as SVG files (rings, rows, cells,
wires) plus a terminal density map, and checks the geometric facts the
figure illustrates: the square chip, the ring stack around the core,
rows abutted for power/ground sharing, and filler-completed rows after
the full flow.  The benchmark times the routed-view rendering.
"""

from __future__ import annotations

from conftest import write_artifact
from repro.circuits import s38417_like
from repro.core import FlowConfig, ascii_density, render_svg, run_flow
from repro.library import cmos130


def test_figure3(out_dir, benchmark):
    circuit = s38417_like(scale=0.05)
    result = run_flow(circuit, cmos130(), FlowConfig(
        tp_percent=3.0, run_atpg_phase=False,
    ))

    fp = render_svg(circuit, result.plan, stage="floorplan")
    pl = render_svg(circuit, result.plan, result.placement,
                    stage="placement")
    rt = benchmark.pedantic(
        lambda: render_svg(circuit, result.plan, result.placement,
                           result.routed, stage="routed"),
        rounds=1, iterations=1,
    )
    write_artifact(out_dir, "figure3a_floorplan.svg", fp)
    write_artifact(out_dir, "figure3b_placement.svg", pl)
    write_artifact(out_dir, "figure3c_routed.svg", rt)
    density = ascii_density(circuit, result.placement)
    write_artifact(out_dir, "figure3_density.txt", density)
    print(density)

    # The three views are progressively richer.
    assert len(fp) < len(pl) < len(rt)
    assert "line" in rt and "line" not in fp

    # Geometry facts from the figure.
    plan = result.plan
    assert plan.chip.width == plan.chip.height      # square chip
    assert 0.9 <= plan.aspect_ratio <= 1.1          # near-square core
    assert plan.n_rows > 10
    # Rows are filled completely after filler insertion.
    occupancy = result.placement.row_occupancy_sites(circuit)
    assert all(
        used == row.n_sites
        for row, used in zip(plan.rows, occupancy)
    )
