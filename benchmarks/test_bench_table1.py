"""Bench: paper Table 1 — impact of TPI on test data.

Regenerates, for each of the three circuits, the rows of Table 1 over
the 0%..5% test-point sweep: #TP, #FF, #chains, l_max, #faults, FC, FE,
SAF patterns (with % decrease) and the TDV/TAT columns of equations
(1)-(2).  Shape assertions encode the paper's findings:

* the pattern count decreases with test points inserted, with the
  largest part of the reduction already captured at low percentages;
* FC and FE increase slightly (the added test-point faults are easy to
  detect);
* the fault total grows with every inserted TSFF;
* TDV and TAT track the pattern count.
"""

from __future__ import annotations

from conftest import write_artifact
from repro.core import format_table1


def test_table1(circuit_sweep, out_dir, benchmark):
    result = circuit_sweep
    rows = benchmark.pedantic(
        result.table1_rows, rounds=1, iterations=1,
    )
    text = format_table1(rows)
    write_artifact(out_dir, f"table1_{result.name}.txt", text)
    print(text)

    base = rows[0]
    top = rows[-1]
    assert base["tp_percent"] == 0.0

    # Flip-flop count grows by exactly the inserted test points.
    for row in rows:
        assert row["n_ff"] == base["n_ff"] + row["n_tp"]
        # Test points add faults (TSFF logic and wiring).
        if row["n_tp"] > 0:
            assert row["n_faults"] > base["n_faults"]

    # Pattern count decreases overall; the 5% point is below baseline.
    assert top["saf_patterns"] < base["saf_patterns"]
    best_dec = max(r["patterns_dec_percent"] for r in rows)
    assert best_dec > 2.0, "no meaningful pattern reduction"
    # Most of the achievable gain arrives by 3% (levelling off).
    by3 = max(r["patterns_dec_percent"] for r in rows
              if r["tp_percent"] <= 3.0)
    assert by3 >= 0.4 * best_dec

    # FC/FE rise slightly and never collapse.
    assert top["fc_percent"] >= base["fc_percent"] - 0.1
    assert top["fe_percent"] >= base["fe_percent"] - 0.1

    # TDV/TAT follow the paper's equations and track the pattern trend.
    for row in rows:
        n, l, p = row["n_chains"], row["l_max"], row["saf_patterns"]
        assert row["tdv_bits"] == 2 * n * ((l + 1) * p + l)
        assert row["tat_cycles"] == (l + 1) * p + 2 * l
    assert top["tdv_bits"] < base["tdv_bits"] * 1.10
