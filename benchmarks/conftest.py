"""Benchmark harness fixtures: the paper's three circuit sweeps.

Each circuit's six-layout experiment (0%..5% test points, Section 4.1)
runs once per session and is shared by the Table 1/2/3 benches; the
scales below keep a full three-circuit reproduction within tens of
minutes of pure Python.  ``--scale-full`` (or REPRO_BENCH_SCALE=1.0)
reproduces the published sizes at correspondingly long runtimes.

Outputs: every bench writes its table/figure to ``benchmarks/out/`` so
the run leaves a complete paper-vs-measured record behind.

Sweeps run through the parallel executor (bit-identical to the serial
reference at any job count): set ``REPRO_BENCH_JOBS=N`` to fan the six
levels out over N worker processes, and ``REPRO_BENCH_CACHE=dir`` to
reuse finished levels across bench invocations.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib

import pytest

from repro import obs
from repro.atpg import AtpgConfig
from repro.circuits import control_core, dsp_core_p26909, s38417_like
from repro.core import (
    ExecutorConfig,
    ExperimentConfig,
    FlowConfig,
    run_sweep,
)

#: Default bench scales per circuit (fraction of the published size).
BENCH_SCALES = {
    "s38417": 0.08,
    "control_core": 0.06,
    "p26909": 0.05,
}

#: The paper's sweep.
TP_PERCENTS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)

OUT_DIR = pathlib.Path(__file__).parent / "out"


def _scale_for(name: str) -> float:
    override = os.environ.get("REPRO_BENCH_SCALE")
    if override:
        return float(override)
    return BENCH_SCALES[name]


def _experiment(name: str) -> ExperimentConfig:
    scale = _scale_for(name)
    atpg = AtpgConfig(seed=2004, backtrack_limit=48)
    # Factories are partials (picklable) so REPRO_BENCH_JOBS > 1 can
    # ship them to executor worker processes.
    if name == "s38417":
        return ExperimentConfig(
            name="s38417",
            circuit_factory=functools.partial(s38417_like, scale=scale),
            tp_percents=TP_PERCENTS,
            flow=FlowConfig(target_utilization=0.97,
                            max_chain_length=100, atpg=atpg),
        )
    if name == "control_core":
        return ExperimentConfig(
            name="control_core",
            circuit_factory=functools.partial(control_core, scale=scale),
            tp_percents=TP_PERCENTS,
            flow=FlowConfig(target_utilization=0.97,
                            max_chain_length=100, atpg=atpg),
        )
    if name == "p26909":
        return ExperimentConfig(
            name="p26909",
            circuit_factory=functools.partial(dsp_core_p26909, scale=scale),
            tp_percents=TP_PERCENTS,
            flow=FlowConfig(target_utilization=0.50,
                            max_chain_length=None, n_chains=32,
                            atpg=atpg),
        )
    raise KeyError(name)


def _executor() -> ExecutorConfig:
    """Executor settings from the environment (serial, uncached default)."""
    return ExecutorConfig(
        jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE") or None,
        trace=bool(os.environ.get("REPRO_BENCH_TRACE")),
    )


_CACHE = {}


def _write_stage_breakdown(name: str, result) -> None:
    """Persist per-stage runtimes per TP level for this sweep.

    Cache-served levels report the timings recorded when the flow
    actually ran, flagged with ``from_cache`` so readers can tell
    measured-this-run from replayed numbers.
    """
    payload = {
        "circuit": name,
        "scale": _scale_for(name),
        "levels": {
            f"{pct:g}": {
                "stage_seconds": run.effective_stage_seconds(),
                "from_cache": run.from_cache,
            }
            for pct, run in sorted(result.runs.items())
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}_stages.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\n[bench artifact] {path}")


def sweep_result(name: str):
    """Run (or reuse) the six-layout sweep for one circuit.

    With ``REPRO_BENCH_TRACE`` set, the sweep runs traced and a merged
    Chrome trace-event file lands in ``benchmarks/out/`` next to the
    per-stage breakdown JSON that every sweep writes.
    """
    if name not in _CACHE:
        executor = _executor()
        if executor.trace:
            with obs.tracing(label=f"bench:{name}") as tracer:
                result = run_sweep(_experiment(name), executor)
            traces = [run.trace for run in result.runs.values()]
            traces.append(tracer.trace())
            OUT_DIR.mkdir(exist_ok=True)
            trace_path = OUT_DIR / f"BENCH_{name}_trace.json"
            obs.write_chrome_trace(trace_path, traces)
            print(f"\n[bench artifact] {trace_path}")
        else:
            result = run_sweep(_experiment(name), executor)
        _write_stage_breakdown(name, result)
        _CACHE[name] = result
    return _CACHE[name]


@pytest.fixture(scope="session", params=list(BENCH_SCALES))
def circuit_sweep(request):
    """Parametrised sweep fixture: one value per paper circuit."""
    return sweep_result(request.param)


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(out_dir: pathlib.Path, filename: str,
                   content: str) -> None:
    """Persist a bench artifact and echo a pointer to the terminal."""
    path = out_dir / filename
    path.write_text(content, encoding="utf-8")
    print(f"\n[bench artifact] {path}")
