"""Bench: paper Table 3 — impact of TPI on timing.

Regenerates the timing rows per circuit, clock domain and sweep level:
test points on the critical path, T_cp (+%), F_max and the eq. (3)
decomposition (T_wires, T_intrinsic, T_load-dep, T_setup, T_skew).
Shape assertions encode the paper's findings:

* the critical-path delay grows with the number of inserted test
  points (roughly linearly, occasionally dipping when a from-scratch
  layout happens to route shorter — the paper observes the same);
* cell delay (intrinsic + load-dependent) dominates the decomposition;
* the decomposition terms sum to T_cp exactly;
* slow nodes exist and are reported, not fixed (Section 4.4).
"""

from __future__ import annotations

from collections import defaultdict

from conftest import write_artifact
from repro.core import format_table3


def test_table3(circuit_sweep, out_dir, benchmark):
    result = circuit_sweep
    rows = benchmark.pedantic(
        result.table3_rows, rounds=1, iterations=1,
    )
    text = format_table3(rows)
    write_artifact(out_dir, f"table3_{result.name}.txt", text)
    print(text)

    by_domain = defaultdict(list)
    for row in rows:
        by_domain[row["domain"]].append(row)

    # The degradation trend is asserted on the *binding* domain (the
    # slowest one).  Fast domains with huge slack (the paper's circuit 1
    # runs "much faster than 8 MHz and 64 MHz as required") see a
    # different critical path in every from-scratch layout and bounce
    # around harmlessly — the paper observes exactly this.
    binding = max(
        by_domain,
        key=lambda d: max(r["t_cp_ps"] for r in by_domain[d]),
    )

    for domain, series in by_domain.items():
        series.sort(key=lambda r: r["tp_percent"])
        base = series[0]
        top = series[-1]

        for row in series:
            # Eq. (3): the five terms sum to T_cp.
            total = (
                row["t_wires_ps"] + row["t_intrinsic_ps"]
                + row["t_load_dep_ps"] + row["t_setup_ps"]
                + row["t_skew_ps"]
            )
            assert abs(total - row["t_cp_ps"]) < 1.0
            # Cell delay contributes most (paper Section 4.4).
            cell = row["t_intrinsic_ps"] + row["t_load_dep_ps"]
            assert cell > row["t_wires_ps"]
            assert cell > abs(row["t_skew_ps"])
            # F_max is the reciprocal of T_cp.
            assert abs(row["fmax_mhz"] - 1e6 / row["t_cp_ps"]) < 0.5

        if domain != binding:
            continue
        # Performance degrades with test points: the paper reports 5%
        # or more; we assert the direction plus a nontrivial magnitude
        # somewhere in the sweep, on the binding domain.
        worst_inc = max(r["t_cp_inc_percent"] for r in series)
        assert top["t_cp_ps"] >= base["t_cp_ps"] * 0.97
        assert worst_inc > 1.0, (
            f"{result.name}/{domain}: no timing impact measured"
        )
        # At least one swept layout routes a test point onto (or next
        # to) the critical path.
        assert any(r["n_tp_cp"] > 0 for r in series[1:])
