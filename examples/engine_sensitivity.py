#!/usr/bin/env python3
"""Layout-engine sensitivity: does the paper survive a change of placer?

The paper's Tables 2/3 measure TPI's area and timing impact *through*
one placement engine.  This experiment re-runs the sweep under every
registered engine (``repro.api.PLACERS``) and reports, per circuit and
TP level, how much the headline quantities move when only the engine
changes: core area, wirelength, and the critical-path delay T_cp.

The punchline column is the spread: for each (circuit, tp%) cell the
max relative difference between engines.  A small spread means the
paper's conclusions are robust to the layout engine; a large one means
they are an artifact of it.

Every engine is deterministic (the SA backend is seeded from the
netlist's content hash), so this table reproduces bit-identically.

Run:  python examples/engine_sensitivity.py [scale] [circuits] [tps]
      scale     circuit size fraction       (default 0.015)
      circuits  comma list                  (default s38417,p26909)
      tps       comma list of TP percents   (default 0,2,4)
"""

import sys

from repro import api


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.015
    circuits = (sys.argv[2].split(",") if len(sys.argv) > 2
                else ["s38417", "p26909"])
    tps = (tuple(float(t) for t in sys.argv[3].split(","))
           if len(sys.argv) > 3 else (0.0, 2.0, 4.0))
    engines = sorted(api.PLACERS)

    print(f"engine sensitivity: scale={scale} engines={engines}")
    print(f"circuits={circuits} tp_percents={[f'{t:g}' for t in tps]}\n")

    # cells[(circuit, tp)][engine] -> (area, wirelength, t_cp)
    cells = {}
    domains = {}
    for circuit in circuits:
        for engine in engines:
            result = api.sweep(circuit, scale=scale, tp_percents=tps,
                               placer=engine)
            t2 = {r["tp_percent"]: r for r in result.table2_rows()}
            t3 = {}
            for row in result.table3_rows():
                # One domain per circuit is enough for the headline:
                # keep the slowest (critical) domain per level.
                key = row["tp_percent"]
                if (key not in t3
                        or row["t_cp_ps"] > t3[key]["t_cp_ps"]):
                    t3[key] = row
            for tp in tps:
                cell = cells.setdefault((circuit, tp), {})
                cell[engine] = (
                    t2[tp]["core_area_um2"],
                    t2[tp]["wirelength_um"],
                    t3[tp]["t_cp_ps"],
                )
                domains[(circuit, tp)] = t3[tp]["domain"]

    header = (f"{'circuit':>12} {'tp%':>4} {'engine':>10} "
              f"{'core(um2)':>10} {'L_wires(um)':>12} {'T_cp(ps)':>9}")
    print(header)
    print("-" * len(header))
    for (circuit, tp), per_engine in cells.items():
        for engine in engines:
            area, wires, tcp = per_engine[engine]
            print(f"{circuit:>12} {tp:>4g} {engine:>10} "
                  f"{area:>10.0f} {wires:>12.0f} {tcp:>9.0f}")

    def spread(values) -> float:
        lo, hi = min(values), max(values)
        return 100.0 * (hi - lo) / lo if lo else 0.0

    print("\nengine-to-engine spread (max-min as % of min):")
    header = (f"{'circuit':>12} {'tp%':>4} {'domain':>8} "
              f"{'area':>7} {'wires':>7} {'T_cp':>7}")
    print(header)
    print("-" * len(header))
    worst = 0.0
    for (circuit, tp), per_engine in cells.items():
        areas = [v[0] for v in per_engine.values()]
        wires = [v[1] for v in per_engine.values()]
        tcps = [v[2] for v in per_engine.values()]
        print(f"{circuit:>12} {tp:>4g} {domains[(circuit, tp)]:>8} "
              f"{spread(areas):>6.2f}% {spread(wires):>6.2f}% "
              f"{spread(tcps):>6.2f}%")
        worst = max(worst, spread(areas), spread(wires), spread(tcps))

    print(f"\nlargest engine-induced spread in any cell: {worst:.2f}%")
    print("(area spreads are ~0 by construction: every engine "
          "legalises into the same floorplan; wirelength and timing "
          "carry the engine signature)")


if __name__ == "__main__":
    main()
