#!/usr/bin/env python3
"""The paper's experiment on one circuit: sweep 0%..5% test points.

Reproduces the six-layout experiment of Section 4.1 on a scaled
benchmark and prints Tables 1-3 in the paper's layout.  This is the
same machinery the benchmark harness uses; run it directly to explore
other scales or circuits.

The six layouts are independent, so the sweep parallelises perfectly:
pass a job count to fan the levels out over worker processes, and a
cache directory to make re-runs resume instantly.  Results are
bit-identical at every job count.

Run:  python examples/tpi_sweep.py [circuit] [scale] [jobs] [cache_dir]
      circuit in {s38417, control_core, p26909}
"""

import functools
import sys
import time

from repro.circuits import control_core, dsp_core_p26909, s38417_like
from repro.core import (
    ExecutorConfig,
    ExperimentConfig,
    FlowConfig,
    format_table1,
    format_table2,
    format_table3,
    run_experiment,
    run_sweep,
)

CIRCUITS = {
    "s38417": (s38417_like, dict(target_utilization=0.97,
                                 max_chain_length=100, n_chains=None)),
    "control_core": (control_core, dict(target_utilization=0.97,
                                        max_chain_length=100,
                                        n_chains=None)),
    "p26909": (dsp_core_p26909, dict(target_utilization=0.50,
                                     max_chain_length=None, n_chains=32)),
}


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "s38417"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    cache_dir = sys.argv[4] if len(sys.argv) > 4 else None
    factory, flow_kwargs = CIRCUITS[name]

    config = ExperimentConfig(
        name=name,
        # partial, not a lambda: worker processes pickle the factory.
        circuit_factory=functools.partial(factory, scale=scale),
        tp_percents=(0.0, 1.0, 2.0, 3.0, 4.0, 5.0),
        flow=FlowConfig(**flow_kwargs),
    )
    print(f"Sweeping {name} at scale {scale}: six layouts "
          f"(0%..5% test points) with jobs={jobs} "
          f"cache={cache_dir or 'off'} ...")
    t0 = time.time()
    if jobs > 1 or cache_dir:
        result = run_sweep(config, ExecutorConfig(jobs=jobs,
                                                  cache_dir=cache_dir))
        cached = sorted(p for p, r in result.runs.items() if r.from_cache)
        if cached:
            print("served from cache: "
                  + ", ".join(f"{p:g}%" for p in cached))
    else:
        result = run_experiment(config)
    print(f"done in {time.time() - t0:.0f} s\n")

    print("Table 1: Impact of TPI on test data")
    print(format_table1(result.table1_rows()))
    print("\nTable 2: Impact of TPI on silicon area")
    print(format_table2(result.table2_rows()))
    print("\nTable 3: Impact of TPI on timing")
    print(format_table3(result.table3_rows()))


if __name__ == "__main__":
    main()
