#!/usr/bin/env python3
"""The LBIST motivation behind TPI (paper Section 2), measured.

Runs on-chip-style pseudo-random testing (LFSR patterns, MISR
signature) on the same circuit with and without test points and prints
the coverage growth curves: without TPs, pseudo-random coverage
saturates well below an acceptable level because of random-pattern-
resistant faults; with a few TSFFs the same pattern budget reaches far
higher coverage — which is why TPI is "commonly applied in industry".

Run:  python examples/lbist_motivation.py [scale] [patterns]
"""

import sys

from repro.circuits import s38417_like
from repro.lbist import LbistConfig, coverage_at, run_lbist
from repro.library import cmos130
from repro.scan import insert_scan
from repro.tpi import TpiConfig, insert_test_points


def session(scale: float, n_patterns: int, tp_percent: float):
    circuit = s38417_like(scale=scale)
    if tp_percent:
        insert_test_points(circuit, cmos130(), TpiConfig(
            n_test_points=round(tp_percent / 100 * circuit.num_flip_flops)
        ))
    insert_scan(circuit, cmos130(), max_chain_length=100)
    return run_lbist(circuit, LbistConfig(n_patterns=n_patterns))


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    n_patterns = int(sys.argv[2]) if len(sys.argv) > 2 else 4096

    base = session(scale, n_patterns, 0.0)
    boosted = session(scale, n_patterns, 2.0)

    print(f"Pseudo-random LBIST on s38417 (scale {scale}), "
          f"{n_patterns} LFSR patterns\n")
    print(f"{'patterns':>9}  {'FC, no TPs':>11}  {'FC, 2% TPs':>11}")
    checkpoints = [n for n in (64, 128, 256, 512, 1024, 2048, 4096,
                               8192) if n <= n_patterns]
    for n in checkpoints:
        print(f"{n:>9}  {100 * coverage_at(base, n):>10.2f}%"
              f"  {100 * coverage_at(boosted, n):>10.2f}%")
    print(f"\nfinal signatures: {base.signature:#010x} (base), "
          f"{boosted.signature:#010x} (with TPs)")
    gain = 100 * (boosted.fault_coverage - base.fault_coverage)
    print(f"test points buy {gain:.1f} coverage points at the same "
          f"pattern budget — the paper's Section 2 motivation.")


if __name__ == "__main__":
    main()
