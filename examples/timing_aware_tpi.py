#!/usr/bin/env python3
"""Timing-aware TPI (the mitigation discussed in paper Section 5).

The paper observes that TPI typically makes *new* paths critical, and
that the common countermeasure — run timing analysis first and exclude
every net on a near-critical path from insertion — is feasible but
costs testability.  This example quantifies that trade-off:

1. lay the circuit out without test points and run STA;
2. collect the nets of all paths within a slack threshold;
3. re-run TPI once unconstrained and once with the exclusion set;
4. compare critical-path delay and residual hard-fault population.

Run:  python examples/timing_aware_tpi.py [scale]
"""

import sys

from repro.circuits import s38417_like
from repro.core import FlowConfig, run_flow
from repro.library import cmos130
from repro.sta import StaConfig
from repro.tpi import critical_nets, exclusion_report


def run_variant(scale: float, exclude: frozenset, label: str) -> None:
    circuit = s38417_like(scale=scale)
    result = run_flow(circuit, cmos130(), FlowConfig(
        tp_percent=2.0,
        exclude_nets=exclude,
        run_atpg_phase=False,
    ))
    path = result.sta.worst_path()
    hard_after = result.tpi.hard_faults_after if result.tpi else 0
    print(f"  {label:<22} T_cp {path.total_ps:7.0f} ps   "
          f"TPs on critical path: {path.n_test_points}   "
          f"hard faults left: {hard_after}")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.06

    print("Baseline layout (no test points) for path discovery ...")
    baseline = run_flow(s38417_like(scale=scale), cmos130(), FlowConfig(
        tp_percent=0.0, run_atpg_phase=False,
        sta=StaConfig(paths_per_domain=400),
    ))
    worst = baseline.sta.worst_path()
    threshold = worst.slack_ps + 0.15 * abs(worst.slack_ps) + 200.0
    excluded = frozenset(critical_nets(
        baseline.sta.all_paths(), slack_threshold_ps=threshold,
    ))
    print(" ", exclusion_report(set(excluded),
                                len(baseline.circuit.nets)))
    print(f"  baseline T_cp {worst.total_ps:.0f} ps\n")

    print("2% TPI, with and without critical-path exclusion:")
    run_variant(scale, frozenset(), "unconstrained TPI")
    run_variant(scale, excluded, "timing-aware TPI")
    print("\nThe timing-aware variant keeps test points off the "
          "critical paths (fewer TPs there, smaller T_cp growth) at "
          "the price of a larger residual hard-fault population — "
          "exactly the trade-off of paper Section 5.")


if __name__ == "__main__":
    main()
