#!/usr/bin/env python3
"""Quickstart: run the paper's full flow once and print its metrics.

Builds a scaled s38417 clone, inserts 2% test points, runs the Figure 2
flow (TPI + scan -> placement -> scan reorder -> ECO/CTS/route ->
extraction -> STA -> ATPG) and prints the Table 1/2/3 quantities for
this single layout.

Run:  python examples/quickstart.py [scale]
"""

import sys
import time

from repro.circuits import s38417_like
from repro.core import FlowConfig, run_flow
from repro.library import cmos130


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.06
    print(f"Generating s38417 clone at scale {scale} ...")
    circuit = s38417_like(scale=scale)
    print(f"  {circuit.num_cells} cells, "
          f"{circuit.num_flip_flops} flip-flops")

    config = FlowConfig(tp_percent=2.0, target_utilization=0.97)
    t0 = time.time()
    result = run_flow(circuit, cmos130(), config)
    print(f"Flow finished in {time.time() - t0:.1f} s "
          f"(stages: {', '.join(f'{k}={v:.1f}s' for k, v in result.stage_seconds.items())})")

    print("\n-- Test data (Table 1 quantities) --")
    m = result.test_metrics()
    print(f"  test points     : {m.n_test_points}")
    print(f"  flip-flops      : {m.n_flip_flops}")
    print(f"  scan chains     : {m.n_chains} (l_max {m.l_max})")
    print(f"  faults          : {m.n_faults}")
    print(f"  fault coverage  : {100 * m.fault_coverage:.2f} %")
    print(f"  fault efficiency: {100 * m.fault_efficiency:.2f} %")
    print(f"  SAF patterns    : {m.n_patterns}")
    print(f"  TDV             : {m.tdv_bits} bits")
    print(f"  TAT             : {m.tat_cycles} cycles")

    print("\n-- Silicon area (Table 2 quantities) --")
    a = result.area_metrics()
    print(f"  cells           : {a['n_cells']:.0f}")
    print(f"  rows            : {a['n_rows']:.0f}")
    print(f"  core area       : {a['core_area_um2']:.0f} um^2")
    print(f"  filler area     : {100 * a['filler_fraction']:.2f} %")
    print(f"  chip area       : {a['chip_area_um2']:.0f} um^2")
    print(f"  wirelength      : {a['wirelength_um']:.0f} um")

    print("\n-- Timing (Table 3 quantities) --")
    for domain in sorted(result.sta.paths):
        p = result.sta.critical(domain)
        if p is None:
            continue
        print(f"  domain {domain}: T_cp {p.total_ps:.0f} ps "
              f"(F_max {p.fmax_mhz:.1f} MHz), "
              f"{p.n_test_points} test point(s) on the critical path")
        print(f"    T_wires {p.t_wires_ps:.0f} + T_intrinsic "
              f"{p.t_intrinsic_ps:.0f} + T_load {p.t_load_dep_ps:.0f} + "
              f"T_setup {p.t_setup_ps:.0f} + T_skew {p.t_skew_ps:.0f} ps")
    print(f"  slow nodes: {len(result.sta.slow_nodes)}, "
          f"hold violations: {result.sta.hold_violations}")


if __name__ == "__main__":
    main()
