#!/usr/bin/env python3
"""Figure 3 gallery: render the layout stages to SVG files.

Generates a circuit, runs the physical flow, and writes the paper's
Figure 3 views — (a) floorplan, (b) placement, (c) routed — as SVG
files plus a terminal density map.  Test points are drawn in red so
their spread over the core is visible.

Run:  python examples/layout_gallery.py [outdir]
"""

import os
import sys

from repro.circuits import s38417_like
from repro.core import FlowConfig, ascii_density, render_svg, run_flow
from repro.library import cmos130


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "layout_gallery"
    os.makedirs(outdir, exist_ok=True)

    circuit = s38417_like(scale=0.05)
    result = run_flow(circuit, cmos130(), FlowConfig(
        tp_percent=3.0, run_atpg_phase=False,
    ))

    stages = {
        "fig3a_floorplan.svg": ("floorplan", None, None),
        "fig3b_placement.svg": ("placement", result.placement, None),
        "fig3c_routed.svg": ("routed", result.placement, result.routed),
    }
    for filename, (stage, placement, routed) in stages.items():
        svg = render_svg(circuit, result.plan, placement, routed,
                         stage=stage)
        path = os.path.join(outdir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(svg)
        print(f"wrote {path} ({len(svg) // 1024} KiB)")

    print("\nCore occupancy map (darker = fuller):")
    print(ascii_density(circuit, result.placement))

    tp_cells = [i.name for i in circuit.instances.values()
                if i.cell.is_tsff]
    print(f"\n{len(tp_cells)} test points (red cells in the SVGs): "
          f"{', '.join(tp_cells[:8])}{' ...' if len(tp_cells) > 8 else ''}")


if __name__ == "__main__":
    main()
