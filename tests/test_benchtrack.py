"""Tests for bench stage-runtime tracking and regression gating.

Most tests operate on synthetic records — the gate's arithmetic
(threshold boundary, noise floor, new-stage handling) must hold
independently of any real sweep.  One end-to-end test runs
:func:`record_stages` with the fast ATPG knobs to pin the record
schema against the real flow.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import benchtrack as bt

ATPG = {"seed": 7, "backtrack_limit": 24, "max_deterministic": 60,
        "abort_recovery_blocks": 4, "second_chance_factor": 1}


def _record(stages, **extra):
    rec = {"kind": bt.RECORD_KIND, "version": bt.RECORD_VERSION,
           "circuit": "s38417", "scale": 0.01, "tp_percents": [0.0],
           "stages": dict(stages), "cells": {},
           "wall_s": sum(stages.values())}
    rec.update(extra)
    return rec


# ----------------------------------------------------------------------
# Deltas
# ----------------------------------------------------------------------
def test_stage_deltas_both_sides():
    base = _record({"atpg": 2.0, "route": 1.0})
    cur = _record({"atpg": 3.0, "route": 0.5})
    deltas = bt.stage_deltas(base, cur)
    assert deltas["atpg"] == {"base": 2.0, "cur": 3.0, "delta_s": 1.0,
                              "ratio": 1.5}
    assert deltas["route"]["ratio"] == 0.5


def test_stage_deltas_one_sided_stages():
    base = _record({"atpg": 2.0})
    cur = _record({"route": 1.0})
    deltas = bt.stage_deltas(base, cur)
    assert deltas["atpg"]["cur"] == 0.0 and deltas["atpg"]["ratio"] == 0.0
    assert deltas["route"]["base"] == 0.0
    assert deltas["route"]["ratio"] == float("inf")  # new stage


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def test_check_regressions_threshold_boundary():
    base = _record({"atpg": 1.0})
    at_budget = _record({"atpg": 1.2})        # exactly +20%: allowed
    over_budget = _record({"atpg": 1.2001})   # just past: flagged
    assert bt.check_regressions(base, at_budget) == []
    problems = bt.check_regressions(base, over_budget)
    assert len(problems) == 1 and "atpg" in problems[0]


def test_check_regressions_min_seconds_floor():
    # A 3 ms stage tripling is scheduler noise, not a regression.
    base = _record({"tiny": 0.003, "real": 1.0})
    cur = _record({"tiny": 0.009, "real": 1.0})
    assert bt.check_regressions(base, cur) == []
    # Lowering the floor exposes it.
    assert bt.check_regressions(base, cur, min_seconds=0.001)


def test_check_regressions_new_stage_has_no_baseline():
    base = _record({"atpg": 1.0})
    cur = _record({"atpg": 1.0, "brand_new": 9.0})
    assert bt.check_regressions(base, cur) == []


def test_format_deltas_table():
    base = _record({"atpg": 1.0})
    cur = _record({"atpg": 1.1, "fresh": 0.2})
    text = bt.format_deltas(base, cur)
    assert "stage" in text and "+10.0%" in text and "new" in text


# ----------------------------------------------------------------------
# Record I/O
# ----------------------------------------------------------------------
def test_load_record_single(tmp_path):
    path = tmp_path / "rec.json"
    path.write_text(json.dumps(_record({"atpg": 1.0})))
    assert bt.load_record(str(path))["stages"] == {"atpg": 1.0}


def test_load_record_rejects_wrong_kind(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"kind": "something_else"}))
    with pytest.raises(ValueError):
        bt.load_record(str(path))


def test_load_record_json_list_history_takes_latest(tmp_path):
    path = tmp_path / "history.json"
    path.write_text(json.dumps([_record({"atpg": 1.0}),
                                _record({"atpg": 2.0})]))
    assert bt.load_record(str(path))["stages"] == {"atpg": 2.0}
    empty = tmp_path / "empty.json"
    empty.write_text("[]")
    with pytest.raises(ValueError):
        bt.load_record(str(empty))


def test_history_append_read_and_load_latest(tmp_path):
    path = tmp_path / "traj.jsonl"
    bt.append_history(str(path), _record({"atpg": 1.0}))
    bt.append_history(str(path), _record({"atpg": 3.0}))
    history = bt.read_history(str(path))
    assert [r["stages"]["atpg"] for r in history] == [1.0, 3.0]
    assert bt.load_record(str(path))["stages"]["atpg"] == 3.0
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    with pytest.raises(ValueError):
        bt.load_record(str(empty))


# ----------------------------------------------------------------------
# CLI gate
# ----------------------------------------------------------------------
def test_cli_compare_exit_codes(tmp_path, capsys):
    base_path = tmp_path / "base.json"
    base_path.write_text(json.dumps(_record({"atpg": 1.0, "route": 0.5})))
    # Self-compare: always within budget.
    assert bt.main(["compare", str(base_path), str(base_path)]) == 0
    assert "OK" in capsys.readouterr().out
    # Synthetic +50% inflation on one stage: must gate.
    inflated = _record({"atpg": 1.5, "route": 0.5})
    cur_path = tmp_path / "cur.json"
    cur_path.write_text(json.dumps(inflated))
    assert bt.main(["compare", str(base_path), str(cur_path)]) == 1
    assert "REGRESSIONS" in capsys.readouterr().out


# ----------------------------------------------------------------------
# End to end against the real flow
# ----------------------------------------------------------------------
def test_record_stages_real_sweep():
    record = bt.record_stages("s38417", scale=0.012, tp_percents=(0.0,),
                              atpg=ATPG)
    assert record["kind"] == bt.RECORD_KIND
    assert record["stages"] and all(
        v >= 0.0 for v in record["stages"].values())
    assert "0" in record["cells"]
    assert record["wall_s"] == pytest.approx(
        sum(record["stages"].values()))
    # A record is always within budget of itself.
    assert bt.check_regressions(record, record) == []
