"""Tests for the test-point insertion engine."""

import random

import pytest

from repro.atpg import BitSimulator
from repro.netlist import extract_comb_view, validate
from repro.testability import compute_cop
from repro.tpi import (
    TpiConfig,
    assign_clock,
    collect_hard_faults,
    critical_nets,
    exclusion_report,
    insert_test_points,
    nearest_domains,
)


def test_insertion_mechanics(lib, small_circuit_mutable):
    c = small_circuit_mutable
    before_ffs = c.num_flip_flops
    report = insert_test_points(c, lib, TpiConfig(n_test_points=4))
    assert report.count == 4
    assert c.num_flip_flops == before_ffs + 4
    for record in report.inserted:
        tp = c.instances[record.instance]
        assert tp.cell.is_tsff
        # D observes the original net, Q drives the moved sinks.
        assert tp.conns["D"] == record.net
        assert tp.conns["Q"] == record.new_net
        assert c.nets[record.new_net].sinks  # sinks actually moved
        assert tp.conns["CLK"] == record.clock


def test_insertion_reduces_hard_faults(lib, small_circuit_mutable):
    c = small_circuit_mutable
    report = insert_test_points(c, lib, TpiConfig(n_test_points=5))
    assert report.hard_faults_after < report.hard_faults_before


def test_functional_equivalence_preserved(lib, small_circuit_mutable):
    """In application mode (TSFF transparent) the logic is unchanged."""
    c = small_circuit_mutable
    reference = c.clone("ref")
    insert_test_points(c, lib, TpiConfig(n_test_points=5))

    ref_view = extract_comb_view(reference, "functional")
    new_view = extract_comb_view(c, "functional")
    ref_sim = BitSimulator(ref_view)
    new_sim = BitSimulator(new_view)
    rng = random.Random(99)
    for _ in range(4):
        words = ref_sim.random_block(rng)
        ref_vals = ref_sim.run(words)
        new_vals = new_sim.run(dict(words))
        for port in reference.outputs:
            ref_net = reference.output_net(port)
            new_net = c.output_net(port)
            assert (
                ref_vals[ref_sim.net_index[ref_net]]
                == new_vals[new_sim.net_index[new_net]]
            ), f"output {port} diverged after TPI"


def test_exclusions_respected(lib, small_circuit_mutable):
    c = small_circuit_mutable
    view = extract_comb_view(c, "test")
    cop = compute_cop(view)
    hard = collect_hard_faults(cop, 1 / 1024)
    excluded = {f.net for f in hard}
    report = insert_test_points(c, lib, TpiConfig(
        n_test_points=3, exclude_nets=excluded,
    ))
    for record in report.inserted:
        assert record.net not in excluded


def test_never_inserts_on_clock_or_scan_nets(lib, small_circuit_mutable):
    c = small_circuit_mutable
    report = insert_test_points(c, lib, TpiConfig(n_test_points=6))
    clock_nets = {d.net for d in c.clocks}
    for record in report.inserted:
        assert record.net not in clock_nets
    assert validate(c).errors == [
        e for e in validate(c).errors if "unconnected" in e
    ]  # only the pending TI/TE/TR hookups may be outstanding


def test_clock_domain_assignment(lib):
    from repro.circuits import control_core
    c = control_core(scale=0.05)
    counts = nearest_domains(c, c.instances["g_100"].conns["Z"]
                             if "g_100" in c.instances else
                             next(iter(c.nets)))
    # Sanity only: counting returns known domains.
    assert set(counts) <= {"clk8", "clk64"}
    report = insert_test_points(c, lib, TpiConfig(n_test_points=4))
    for record in report.inserted:
        assert record.clock in ("clk8", "clk64")
        assert assign_clock(c, record.net) in ("clk8", "clk64")


def test_timing_aware_helpers():
    class P:  # stand-in timing path
        def __init__(self, slack, nets):
            self.slack_ps = slack
            self.nets = nets

    paths = [P(-10.0, ["a", "b"]), P(500.0, ["c"]), P(40.0, ["d"])]
    excluded = critical_nets(paths, slack_threshold_ps=50.0)
    assert excluded == {"a", "b", "d"}
    text = exclusion_report(excluded, all_nets=30)
    assert "3 nets" in text and "10.0%" in text
