"""Tests for scan insertion, chain reordering and flush simulation."""

import pytest

from repro.circuits import control_core
from repro.netlist import validate
from repro.scan import (
    SCAN_ENABLE,
    TP_ENABLE,
    chain_wirelength,
    flush_delay_ok,
    insert_scan,
    nearest_neighbour_order,
    reorder_chains,
    restitch_chains,
    simulate_shift,
    tsff_flush_paths,
    two_opt,
)
from repro.tpi import TpiConfig, insert_test_points


@pytest.fixture()
def scanned(lib, small_circuit_mutable):
    c = small_circuit_mutable
    config = insert_scan(c, lib, max_chain_length=40)
    return c, config


def test_insert_scan_replaces_dffs(scanned):
    c, config = scanned
    for inst in c.instances.values():
        if inst.is_sequential:
            assert inst.cell.is_scan
    assert validate(c).ok


def test_chains_balanced_and_bounded(scanned):
    c, config = scanned
    assert config.max_length <= 40
    lengths = [len(chain) for chain in config.chains]
    assert max(lengths) - min(lengths) <= 1 or len(set(lengths)) <= 2
    assert config.n_flip_flops == c.num_flip_flops


def test_chains_do_not_mix_clock_domains(lib):
    c = control_core(scale=0.05)
    config = insert_scan(c, lib, max_chain_length=30)
    for chain, domain in zip(config.chains, config.clock_of_chain):
        for name in chain:
            assert c.clock_of(name) == domain
    assert set(config.clock_of_chain) == {"clk8", "clk64"}


def test_fixed_chain_count(lib, small_circuit_mutable):
    config = insert_scan(small_circuit_mutable, lib, n_chains=4)
    assert config.n_chains == 4


def test_sizing_arguments_exclusive(lib, small_circuit_mutable):
    with pytest.raises(ValueError):
        insert_scan(small_circuit_mutable, lib)
    with pytest.raises(ValueError):
        insert_scan(small_circuit_mutable, lib,
                    max_chain_length=10, n_chains=2)


def test_shift_simulation_transports_patterns(scanned):
    c, config = scanned
    stimulus = [1, 0, 1, 1, 0, 0, 1]
    out = simulate_shift(c, config, stimulus, chain=0)
    assert out == stimulus
    assert flush_delay_ok(c, config)


def test_tpi_cells_get_control_nets(lib, small_circuit_mutable):
    c = small_circuit_mutable
    insert_test_points(c, lib, TpiConfig(n_test_points=2))
    insert_scan(c, lib, max_chain_length=40)
    assert SCAN_ENABLE in c.nets
    assert TP_ENABLE in c.nets
    tsffs = [i for i in c.instances.values() if i.cell.is_tsff]
    assert tsffs
    for inst in tsffs:
        assert inst.conns["TR"] == TP_ENABLE
        assert inst.conns["TE"] == SCAN_ENABLE
        assert inst.conns["TI"] is not None
    assert tsff_flush_paths(c) == [i.name for i in tsffs]
    assert validate(c).ok


def test_restitch_rejects_membership_changes(scanned):
    c, config = scanned
    bad = [list(chain) for chain in config.chains]
    bad[0] = bad[0][:-1]  # drop one FF
    with pytest.raises(ValueError):
        restitch_chains(c, config, bad)


def test_nearest_neighbour_and_two_opt_improve(scanned):
    c, config = scanned
    import random
    rng = random.Random(1)
    members = config.chains[0]
    positions = {
        name: (rng.uniform(0, 100), rng.uniform(0, 100))
        for name in members
    }
    start = (0.0, 0.0)
    base = chain_wirelength(members, positions, start)
    nn = nearest_neighbour_order(members, positions, start)
    nn_len = chain_wirelength(nn, positions, start)
    assert nn_len <= base + 1e-9
    improved = two_opt(list(nn), positions, start)
    assert chain_wirelength(improved, positions, start) <= nn_len + 1e-9


def test_reorder_chains_end_to_end(scanned, lib):
    c, config = scanned
    import random
    rng = random.Random(2)
    positions = {
        name: (rng.uniform(0, 200), rng.uniform(0, 200))
        for chain in config.chains for name in chain
    }
    scan_ins = {i: (0.0, 0.0) for i in range(config.n_chains)}
    report = reorder_chains(c, config, positions, scan_ins, lib)
    assert report.wirelength_after_um <= report.wirelength_before_um
    assert validate(c).ok
    # Chains still shift correctly after the rewire.
    stimulus = [1, 0, 0, 1, 1]
    assert simulate_shift(c, config, stimulus, chain=0) == stimulus
