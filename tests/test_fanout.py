"""Tests for the synthesis-style electrical DRC passes."""

import pytest

from repro.netlist import Circuit, validate
from repro.netlist.fanout import (
    estimated_load_ff,
    fix_electrical,
    fix_fanout,
    upsize_drivers,
)
from repro.scan import insert_scan
from repro.atpg import BitSimulator
from repro.netlist import extract_comb_view


def _fanout_hog(lib, n_sinks=40):
    c = Circuit("hog")
    c.add_input("a")
    c.add_net("big")
    c.add_instance("drv", lib["INV_X1"], {"A": "a", "Z": "big"})
    for i in range(n_sinks):
        c.add_net(f"o{i}")
        c.add_instance(f"s{i}", lib["INV_X1"], {"A": "big", "Z": f"o{i}"})
        c.add_output(f"p{i}", f"o{i}")
    return c


def test_fix_fanout_bounds_all_nets(lib):
    c = _fanout_hog(lib)
    report = fix_fanout(c, lib, max_fanout=8)
    assert report.buffers_added >= 5
    for name, net in c.nets.items():
        assert len(net.sinks) <= 8, f"net {name} still has {len(net.sinks)}"
    assert validate(c).ok


def test_fix_fanout_preserves_function(lib):
    c = _fanout_hog(lib, n_sinks=20)
    ref = c.clone("ref")
    fix_fanout(c, lib, max_fanout=6)
    view_ref = extract_comb_view(ref, "test")
    view_new = extract_comb_view(c, "test")
    import random
    rng = random.Random(0)
    sim_ref = BitSimulator(view_ref)
    sim_new = BitSimulator(view_new)
    words = sim_ref.random_block(rng)
    vals_ref = sim_ref.run(words)
    vals_new = sim_new.run({"a": words["a"]})
    for port in ref.outputs:
        net_r = ref.output_net(port)
        net_n = c.output_net(port)
        assert (
            vals_ref[sim_ref.net_index[net_r]]
            == vals_new[sim_new.net_index[net_n]]
        )


def test_clock_nets_untouched(lib, small_circuit_mutable):
    c = small_circuit_mutable
    insert_scan(c, lib, max_chain_length=50)
    clock_fanout_before = {
        d.net: len(c.nets[d.net].sinks) for d in c.clocks
    }
    fix_fanout(c, lib, max_fanout=8)
    for d in c.clocks:
        assert len(c.nets[d.net].sinks) == clock_fanout_before[d.net]


def test_upsize_drivers(lib):
    c = _fanout_hog(lib, n_sinks=8)
    assert estimated_load_ff(c, "big") > lib["INV_X1"].max_cap_ff * 0.6
    report = upsize_drivers(c, lib)
    assert report.drivers_upsized >= 1
    assert c.instances["drv"].cell.drive > 1


def test_fix_electrical_combined(lib, small_circuit_mutable):
    c = small_circuit_mutable
    insert_scan(c, lib, max_chain_length=50)
    report = fix_electrical(c, lib)
    assert report.buffers_added >= 0
    assert validate(c).ok
    clock_nets = {d.net for d in c.clocks}
    for name, net in c.nets.items():
        if name in clock_nets:
            continue
        assert len(net.sinks) <= 8
