"""The simulated-annealing engine: determinism, legality, quality.

The headline gates mirror the executor's bit-identity contract: the
``"sa"`` engine must reproduce exactly — same process, fresh process
pool, any job count — because its only randomness is the content-derived
seed threaded through ``Placer.refine``.
"""

from __future__ import annotations

import functools

import pytest

from repro.atpg import AtpgConfig
from repro.circuits import s38417_like
from repro.core import (
    ExecutorConfig,
    ExperimentConfig,
    FlowConfig,
    run_experiment,
    run_sweep,
)
from repro.layout import build_floorplan, get_placer, placement_seed

FAST_ATPG = AtpgConfig(seed=7, backtrack_limit=24, max_deterministic=60,
                       abort_recovery_blocks=4, second_chance_factor=1)
LEVELS = (0.0, 2.0)
SCALE = 0.012


def sa_experiment() -> ExperimentConfig:
    return ExperimentConfig(
        name="s38417",
        circuit_factory=functools.partial(s38417_like, scale=SCALE),
        tp_percents=LEVELS,
        flow=FlowConfig(atpg=FAST_ATPG, placer="sa"),
    )


def table_dicts(result):
    return {
        "table1": result.table1_rows(),
        "table2": result.table2_rows(),
        "table3": result.table3_rows(),
    }


def _place_and_refine(circuit, passes=2):
    plan = build_floorplan(circuit, target_utilization=0.97)
    engine = get_placer("sa")
    seed = placement_seed(circuit, "sa")
    placement = engine.place(circuit, plan, seed=seed)
    gain = engine.refine(circuit, placement, passes=passes, seed=seed)
    return placement, gain


# ----------------------------------------------------------------------
# Unit-level determinism and legality
# ----------------------------------------------------------------------
def test_sa_refine_is_bit_identical_across_runs():
    circuit = s38417_like(scale=0.02)
    p1, g1 = _place_and_refine(circuit)
    p2, g2 = _place_and_refine(circuit)
    assert p1.positions == p2.positions
    assert p1.rows_cells == p2.rows_cells
    assert p1.row_of == p2.row_of
    assert g1 == g2


def test_sa_seed_changes_the_anneal():
    circuit = s38417_like(scale=0.02)
    plan = build_floorplan(circuit, target_utilization=0.97)
    engine = get_placer("sa")
    base = engine.place(circuit, plan, seed=1)
    import copy

    alt = copy.deepcopy(base)
    engine.refine(circuit, base, passes=1, seed=1)
    engine.refine(circuit, alt, passes=1, seed=2)
    assert base.positions != alt.positions


def test_sa_preserves_legality():
    circuit = s38417_like(scale=0.02)
    placement, _ = _place_and_refine(circuit)
    # Every row stays within its site quota...
    occupancy = placement.row_occupancy_sites(circuit)
    for used, row in zip(occupancy, placement.plan.rows):
        assert used <= row.n_sites
    # ...bookkeeping is coherent...
    for row_index, cells in enumerate(placement.rows_cells):
        for name in cells:
            assert placement.row_of[name] == row_index
    # ...and no two cells in a row overlap.
    for cells in placement.rows_cells:
        spans = []
        for name in cells:
            x, _ = placement.positions[name]
            w = circuit.instances[name].cell.width_um
            spans.append((x - w / 2, x + w / 2))
        spans.sort()
        for (_, right), (left, _) in zip(spans, spans[1:]):
            assert left >= right - 1e-6


def test_sa_improves_on_untouched_global_placement():
    circuit = s38417_like(scale=0.02)
    plan = build_floorplan(circuit, target_utilization=0.97)
    engine = get_placer("sa")
    seed = placement_seed(circuit, "sa")
    placement = engine.place(circuit, plan, seed=seed)
    before = placement.total_hpwl_um(circuit)
    gain = engine.refine(circuit, placement, passes=2, seed=seed)
    after = placement.total_hpwl_um(circuit)
    assert gain > 0.0
    assert after == pytest.approx(before - gain, rel=1e-9)


# ----------------------------------------------------------------------
# Flow-level determinism: serial vs executor (the ISSUE's gate)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sa_serial_result():
    return run_experiment(sa_experiment())


@pytest.fixture(scope="module")
def sa_parallel_result(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("sa_sweep_cache"))
    return run_sweep(
        sa_experiment(),
        ExecutorConfig(jobs=2, cache_dir=cache_dir),
    )


def test_sa_sweep_parallel_bit_identical_to_serial(sa_serial_result,
                                                   sa_parallel_result):
    assert (table_dicts(sa_serial_result)
            == table_dicts(sa_parallel_result))


def test_sa_sweep_repeats_bit_identically(sa_serial_result):
    again = run_experiment(sa_experiment())
    assert table_dicts(again) == table_dicts(sa_serial_result)


def test_sa_and_quadratic_sweeps_differ(sa_serial_result):
    quad = run_experiment(ExperimentConfig(
        name="s38417",
        circuit_factory=functools.partial(s38417_like, scale=SCALE),
        tp_percents=LEVELS,
        flow=FlowConfig(atpg=FAST_ATPG),
    ))
    sa_wl = [r["wirelength_um"] for r in
             table_dicts(sa_serial_result)["table2"]]
    quad_wl = [r["wirelength_um"] for r in table_dicts(quad)["table2"]]
    assert sa_wl != quad_wl
