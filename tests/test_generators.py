"""Tests for the profile-driven circuit generator."""

import pytest

from repro.circuits import (
    CircuitProfile,
    ClockSpec,
    control_core,
    dsp_core_p26909,
    generate,
    s38417_like,
)
from repro.netlist import extract_comb_view, validate


def test_deterministic_generation(lib):
    a = s38417_like(scale=0.02, seed=7)
    b = s38417_like(scale=0.02, seed=7)
    assert a.stats() == b.stats()
    assert {n: i.cell.name for n, i in a.instances.items()} == {
        n: i.cell.name for n, i in b.instances.items()
    }
    c = s38417_like(scale=0.02, seed=8)
    assert {n: i.conns.get("A") for n, i in a.instances.items()} != {
        n: i.conns.get("A") for n, i in c.instances.items()
    }


def test_profiles_match_published_interfaces(lib):
    c = s38417_like(scale=1.0 / 8)  # keep it quick
    # Interface counts scale with the profile.
    assert c.num_flip_flops == pytest.approx(1636 / 8, rel=0.05)
    cc = control_core(scale=0.05)
    assert [d.net for d in cc.clocks] == ["clk8", "clk64"]
    assert cc.clock_period_ps("clk8") == 125000.0
    dsp = dsp_core_p26909(scale=0.02)
    assert dsp.clock_period_ps("clk") == 7143.0


def test_generated_circuits_validate(lib):
    for factory in (s38417_like, control_core, dsp_core_p26909):
        c = factory(scale=0.02)
        report = validate(c)
        assert report.ok, report.errors[:3]
        assert not report.warnings  # no dangling nets


def test_depth_respects_target(lib):
    c = s38417_like(scale=0.05)
    view = extract_comb_view(c, "test")
    # Soft bound: some headroom over target_depth for blocks.
    assert view.max_level() <= 30 + 25


def test_no_gate_feeds_itself_twice(lib):
    c = s38417_like(scale=0.03)
    for inst in c.instances.values():
        if inst.is_sequential or inst.cell.is_filler:
            continue
        nets = [inst.conns[p] for p in inst.cell.input_pins
                if p in inst.conns]
        assert len(nets) == len(set(nets)), inst.name


def test_clock_domain_split(lib):
    c = control_core(scale=0.05)
    domains = {}
    for inst in c.instances.values():
        if inst.is_sequential:
            domains.setdefault(c.clock_of(inst.name), []).append(inst)
    assert set(domains) == {"clk8", "clk64"}
    frac64 = len(domains["clk64"]) / c.num_flip_flops
    assert 0.5 <= frac64 <= 0.7  # profile says 0.6


def test_net_tags_cover_all_generated_nets(lib):
    c = s38417_like(scale=0.03)
    tags = c.net_tags
    assert set(tags.values()) <= {
        "control", "shadow", "hard_block", "datapath", "absorb",
    }
    assert "shadow" in set(tags.values())
    assert "hard_block" in set(tags.values())


def test_bad_profile_rejected(lib):
    with pytest.raises(ValueError):
        generate(CircuitProfile(
            name="bad", n_inputs=4, n_outputs=4, n_flip_flops=8,
            n_gates=64,
            clocks=(ClockSpec("c1", 100.0, 0.5),),  # fractions != 1
        ), lib)
    with pytest.raises(ValueError):
        CircuitProfile(
            name="x", n_inputs=1, n_outputs=1, n_flip_flops=1, n_gates=1,
        ).scaled(0.0)
