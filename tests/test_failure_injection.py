"""Failure injection: the validator and flow guards catch corruption."""

import pytest

from repro.netlist import Circuit, validate
from repro.netlist.net import PORT


def _healthy(lib):
    c = Circuit("t")
    c.add_clock("clk", 1000.0)
    c.add_input("a")
    c.add_input("b")
    c.add_net("n1")
    c.add_instance("g", lib["NAND2_X1"], {"A": "a", "B": "b", "Z": "n1"})
    c.add_net("q")
    c.add_instance("ff", lib["DFF_X1"], {"D": "n1", "CLK": "clk", "Q": "q"})
    c.add_output("y", "q")
    assert validate(c).ok
    return c


def test_stale_driver_backreference_detected(lib):
    c = _healthy(lib)
    c.nets["n1"].driver = ("g", "A")  # wrong pin recorded
    assert any("back-reference" in e or "driven" in e
               for e in validate(c).errors)


def test_stale_sink_backreference_detected(lib):
    c = _healthy(lib)
    c.nets["a"].sinks.append(("ff", "D"))  # phantom sink
    report = validate(c)
    assert not report.ok


def test_missing_driver_detected(lib):
    c = _healthy(lib)
    c.nets["n1"].driver = None
    assert any("no driver" in e for e in validate(c).errors)


def test_ghost_instance_detected(lib):
    c = _healthy(lib)
    del c.instances["g"]
    report = validate(c)
    assert any("missing instance" in e for e in report.errors)


def test_output_port_corruption_detected(lib):
    c = _healthy(lib)
    c.nets["q"].sinks.remove((PORT, "y"))
    assert any("not a sink" in e for e in validate(c).errors)


def test_raise_on_error(lib):
    c = _healthy(lib)
    c.nets["n1"].driver = None
    with pytest.raises(ValueError, match="validation failed"):
        validate(c).raise_on_error()


def test_flow_validation_catches_corruption(lib):
    """run_flow validates between steps: a corrupted netlist aborts."""
    from repro.circuits import s38417_like
    from repro.core import FlowConfig, run_flow

    c = s38417_like(scale=0.015)
    # Sabotage: disconnect a random gate input.
    victim = next(
        i for i in c.instances.values()
        if not i.is_sequential and not i.cell.is_filler
    )
    pin = victim.cell.input_pins[0]
    c.disconnect(victim.name, pin)
    with pytest.raises(ValueError):
        run_flow(c, lib, FlowConfig(run_atpg_phase=False))
