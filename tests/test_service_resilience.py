"""Load shedding, graceful drain, deadlines, degraded mode, client
retries, and the daemon-kill soak.

These are the operational halves of the durable-service contract:

* **Drain** — a daemon told to shut down finishes what it started:
  new submits get 503 + ``Retry-After``, status polls keep answering,
  in-flight jobs complete, and the durable store holds their final
  transitions.
* **Admission** — a bounded queue rejects early with 429 +
  ``Retry-After`` instead of accepting work it cannot finish.
* **Deadlines** — a request-level ``deadline_s`` cancels jobs nobody
  is waiting for, queued or mid-run.
* **Degraded mode** — a cache write failure flips the daemon to a
  read-only cache; jobs keep succeeding, ``/healthz`` says degraded.
* **Client resilience** — the HTTP client retries connection refusal
  and 429/503 with deterministic backoff, honoring ``Retry-After``,
  and wraps raw socket errors into readable, actionable messages.
* **The soak** — ``kill -9`` a real ``repro serve`` process mid-job,
  restart it on the same cache dir, and require the recovered job's
  result to be byte-identical to an in-process ``api.sweep``.
"""

from __future__ import annotations

import http.server
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import api
from repro.service import (
    JobStore,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
    SweepRequest,
)
from repro.service.protocol import canonical_result_bytes

#: Cheap ATPG knobs, matching tests/test_service.py.
ATPG = {"seed": 7, "backtrack_limit": 24, "max_deterministic": 60,
        "abort_recovery_blocks": 4, "second_chance_factor": 1}
SCALE = 0.012
OPTIONS = {"atpg": ATPG}


def submit(client, tp_percents, **overrides):
    return client.submit(SweepRequest(
        circuit="s38417", scale=SCALE, tp_percents=tp_percents,
        options=OPTIONS, **overrides))


def wait_state(client, job_id, state, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        payload = client.status(job_id)
        if payload["state"] == state:
            return payload
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} never reached {state!r}")


# ----------------------------------------------------------------------
# Graceful drain (what SIGTERM triggers in run_daemon)
# ----------------------------------------------------------------------
def test_drain_finishes_inflight_and_sheds_submits(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path),
                           job_workers=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0,
                               retries=0)
        inflight = submit(client, (0.1, 1.1))
        wait_state(client, inflight.id, "running")

        # First half of the SIGTERM handler: stop admitting.
        thread.service.manager.begin_drain()

        health = client.healthz()
        assert health["status"] == "draining"
        assert health["draining"] is True

        # New submissions are shed with the machine-readable retry
        # contract; nothing of the rejected job is recorded.
        with pytest.raises(ServiceError) as err:
            submit(client, (2.1,))
        assert err.value.status == 503
        assert err.value.retry_after_s is not None
        assert err.value.retry_after_s >= 1
        assert err.value.payload["retry_after_s"] >= 1.0

        # Status polls keep answering while the daemon drains.
        assert client.status(inflight.id)["state"] in ("running",
                                                       "done")

        # Second half of the handler: wait out the in-flight job.
        assert thread.drain(timeout_s=240.0) is True
        assert client.status(inflight.id)["state"] == "done"
        assert client.result(inflight.id) is not None
        assert client.metrics()["jobs_rejected"] >= 1

    # Zero lost jobs: the store's final word on every admitted job is
    # terminal, and the rejected submit never entered it.
    replay = JobStore.replay(Path(tmp_path) / "jobs")
    assert [r.id for r in replay.records] == [inflight.id]
    assert replay.records[0].state == "done"
    assert inflight.id in replay.reports


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
def test_bounded_queue_rejects_with_429_and_retry_after(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path),
                           job_workers=1, max_pending=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0,
                               retries=0)
        blocker = submit(client, (0.2, 1.2))
        wait_state(client, blocker.id, "running")  # queue now empty
        queued = submit(client, (2.2,))            # fills the bound

        with pytest.raises(ServiceError) as err:
            submit(client, (3.2,))
        assert err.value.status == 429
        assert err.value.retry_after_s is not None
        assert err.value.retry_after_s >= 1
        assert "full" in str(err.value)

        metrics = client.metrics()
        assert metrics["jobs_rejected"] >= 1
        assert metrics["max_pending"] == 1

        client.cancel(queued.id)
        client.wait(blocker.id, timeout_s=240)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
def test_deadline_expired_while_queued_cancels_without_running(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path),
                           job_workers=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0)
        blocker = submit(client, (0.3, 1.3))
        wait_state(client, blocker.id, "running")
        doomed = submit(client, (2.3,), deadline_s=0.05)

        final = client.wait(doomed.id, timeout_s=240)
        assert final["state"] == "cancelled"
        assert "expired before the job started" in final["error"]
        # It never ran: no journal events, no result.
        assert final["progress"]["total"] == 0
        assert client.metrics()["jobs_expired"] >= 1
        client.wait(blocker.id, timeout_s=240)


def test_deadline_expiring_mid_run_cancels_cooperatively(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path),
                           job_workers=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0)
        record = submit(client, (0.4, 1.4, 2.4, 3.4), deadline_s=0.2)
        final = client.wait(record.id, timeout_s=240)
        assert final["state"] == "cancelled"
        assert "expired mid-run" in final["error"]
        progress = final["progress"]
        assert progress["done"] < progress["total"]


# ----------------------------------------------------------------------
# Degraded mode: cache write failures flip to read-only, never fail jobs
# ----------------------------------------------------------------------
def test_cache_write_failure_degrades_but_jobs_succeed(tmp_path):
    from repro.chaos import FaultPlan, FaultSpec

    config = ServiceConfig(port=0, cache_dir=str(tmp_path),
                           job_workers=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0)
        plan = FaultPlan(faults=(FaultSpec(kind="cache_write_error"),))
        record = submit(client, (0.5,), chaos=plan)
        final = client.wait(record.id, timeout_s=240)
        assert final["state"] == "done"          # degraded, not broken

        report = client.result(record.id)
        assert report.cache_write_failures >= 1

        health = client.healthz()
        assert health["status"] == "degraded"
        assert health["degraded"] is True
        assert record.id in health["degraded_reason"]

        metrics = client.metrics()
        assert metrics["degraded"] is True
        assert metrics["cache_write_failures"] >= 1
        prom = client.metrics_prom()
        assert "repro_degraded 1" in prom
        assert "repro_cache_write_failures_total" in prom

        # The daemon keeps serving jobs on its read-only cache.
        after = submit(client, (1.5,))
        assert client.wait(after.id, timeout_s=240)["state"] == "done"


# ----------------------------------------------------------------------
# Client resilience
# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_connection_refused_is_wrapped_readably():
    client = ServiceClient(f"http://127.0.0.1:{_free_port()}",
                           timeout_s=2.0, retries=0)
    with pytest.raises(ServiceError) as err:
        client.healthz()
    assert err.value.status == 0
    message = str(err.value)
    assert "ConnectionRefusedError" in message
    assert "/healthz" in message
    assert "is the daemon running" in message
    assert isinstance(err.value.__cause__, ConnectionRefusedError)


class _FlakyHandler(http.server.BaseHTTPRequestHandler):
    """Answers 429 (with Retry-After) until ``fail_first`` requests
    have been shed, then 200."""

    calls = 0
    fail_first = 2

    def do_GET(self):
        cls = type(self)
        cls.calls += 1
        if cls.calls <= cls.fail_first:
            body = json.dumps({"error": "busy"}).encode()
            self.send_response(429)
            self.send_header("Retry-After", "0")
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        body = json.dumps({"status": "ok"}).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # keep pytest output clean
        pass


@pytest.fixture
def flaky_server():
    _FlakyHandler.calls = 0
    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0),
                                             _FlakyHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        thread.join(timeout=5)


def test_client_retries_429_until_success(flaky_server):
    client = ServiceClient(flaky_server, timeout_s=5.0, retries=3,
                           backoff_base_s=0.01)
    assert client.healthz()["status"] == "ok"
    assert _FlakyHandler.calls == 3  # two sheds + the success


def test_client_surfaces_429_after_retries_run_out(flaky_server):
    _FlakyHandler.fail_first = 10 ** 6
    try:
        client = ServiceClient(flaky_server, timeout_s=5.0, retries=2,
                               backoff_base_s=0.01)
        with pytest.raises(ServiceError) as err:
            client.healthz()
        assert err.value.status == 429
        assert err.value.retry_after_s == 0.0   # the server's hint
        assert _FlakyHandler.calls == 3         # initial + 2 retries
    finally:
        _FlakyHandler.fail_first = 2


def test_client_retry_schedule_is_deterministic():
    client = ServiceClient("http://127.0.0.1:1", retries=3,
                           backoff_base_s=0.2, backoff_max_s=5.0)
    delays = [client._retry_delay(n, None) for n in (1, 2, 3)]
    assert delays == [0.2, 0.4, 0.8]
    # Retry-After raises the floor but never beats the ceiling.
    assert client._retry_delay(1, 2.0) == 2.0
    assert client._retry_delay(1, 60.0) == 5.0
    assert client._retry_delay(3, 0.1) == 0.8


# ----------------------------------------------------------------------
# The daemon-kill soak: kill -9 mid-job, restart, byte-identity
# ----------------------------------------------------------------------
REPO_ROOT = Path(__file__).resolve().parent.parent
SOAK_LEVELS = (0.6, 1.6)


def _spawn_daemon(cache_dir: Path) -> "tuple[subprocess.Popen, str]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(cache_dir), "--job-workers", "1",
         "--drain-timeout", "60"],
        cwd=str(REPO_ROOT), env=env, text=True,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 60.0
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = re.search(r"listening on (http://\S+)", line)
        if match:
            return proc, match.group(1)
    proc.kill()
    raise RuntimeError("daemon never announced its port:\n"
                       + "".join(lines))


def _drain_pipe(proc):
    """Keep the daemon's stdout pipe from filling (and collect it)."""
    chunks = []

    def reader():
        for line in proc.stdout:
            chunks.append(line)

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    return chunks, thread


@pytest.mark.slow
def test_daemon_kill9_restart_soak(tmp_path):
    cache_dir = tmp_path / "soak-cache"

    # Boot #1: submit, wait until mid-job, kill -9.
    proc, url = _spawn_daemon(cache_dir)
    out1, _ = _drain_pipe(proc)
    try:
        client = ServiceClient(url, timeout_s=10.0)
        record = submit(client, SOAK_LEVELS, jobs=1)
        deadline = time.monotonic() + 240.0
        while time.monotonic() < deadline:
            payload = client.status(record.id)
            if payload["state"] == "running":
                break
            time.sleep(0.05)
        else:
            raise TimeoutError("job never started before the kill")
    finally:
        proc.kill()                      # SIGKILL: no cleanup at all
        proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL

    # Boot #2 on the same cache dir: the job must come back and
    # finish; 'interrupted' is non-terminal so wait() rides through.
    proc2, url2 = _spawn_daemon(cache_dir)
    out2, out2_thread = _drain_pipe(proc2)
    try:
        client2 = ServiceClient(url2, timeout_s=10.0)
        assert record.id in [r.id for r in client2.jobs()]
        metrics = client2.metrics()
        assert (metrics["jobs_interrupted"] >= 1
                or metrics["jobs_recovered"] >= 1)

        final = client2.wait(record.id, timeout_s=240)
        assert final["state"] == "done"
        report = client2.result(record.id)
        served = report.results["s38417"]

        local = api.sweep("s38417", scale=SCALE,
                          tp_percents=SOAK_LEVELS, **OPTIONS)
        assert (canonical_result_bytes(served)
                == canonical_result_bytes(local))

        # Graceful exit this time: SIGTERM drains and checkpoints.
        proc2.send_signal(signal.SIGTERM)
        proc2.wait(timeout=120)
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait(timeout=30)
        out2_thread.join(timeout=10)
    assert proc2.returncode == 0
    assert any("job store checkpointed" in line for line in out2)

    # The durable store's last word on the job is done-with-report.
    replay = JobStore.replay(cache_dir / "jobs")
    states = {r.id: r.state for r in replay.records}
    assert states[record.id] == "done"
    assert record.id in replay.reports
