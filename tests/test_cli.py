"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace


def test_flow_command(capsys):
    rc = main(["flow", "--circuit", "s38417", "--scale", "0.015",
               "--tp", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "patterns" in out and "T_cp" in out and "chip" in out


def test_lbist_command(capsys):
    rc = main(["lbist", "--circuit", "s38417", "--scale", "0.02",
               "--patterns", "256", "--tp", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "FC no TPs" in out


def test_render_command(tmp_path, capsys):
    rc = main(["render", "--circuit", "s38417", "--scale", "0.02",
               "--tp", "2", "--out", str(tmp_path)])
    assert rc == 0
    for stage in ("floorplan", "placement", "routed"):
        path = tmp_path / f"s38417_{stage}.svg"
        assert path.exists()
        assert path.read_text().startswith("<svg")


def test_unknown_circuit_rejected():
    with pytest.raises(SystemExit):
        main(["flow", "--circuit", "nope"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_negative_tp_percents_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--tp-percents", "0,-1,2"])
    assert "non-negative" in capsys.readouterr().err


def test_duplicate_tp_percents_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--tp-percents", "0,2,2"])
    assert "duplicate" in capsys.readouterr().err


def test_garbage_tp_percents_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--tp-percents", "0,two"])
    assert "comma-separated" in capsys.readouterr().err


def test_flow_trace_writes_valid_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "flow.json"
    rc = main(["flow", "--circuit", "s38417", "--scale", "0.012",
               "--tp", "2", "--trace", str(trace_path)])
    assert rc == 0
    obj = json.loads(trace_path.read_text())
    assert validate_chrome_trace(obj) == []
    out = capsys.readouterr().out
    assert "wrote trace" in out
    assert "tpi_scan" in out  # the per-stage summary table printed


def test_sweep_trace_merges_levels_into_one_file(tmp_path, capsys):
    trace_path = tmp_path / "sweep.json"
    rc = main(["sweep", "--circuit", "s38417", "--scale", "0.01",
               "--tp-percents", "0,2", "--trace", str(trace_path)])
    assert rc == 0
    obj = json.loads(trace_path.read_text())
    assert validate_chrome_trace(obj) == []
    names = {e["name"] for e in obj["traceEvents"]}
    assert "tpi_scan" in names and "atpg" in names
    out = capsys.readouterr().out
    assert "Stage runtimes" in out
