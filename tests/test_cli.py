"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace


def test_flow_command(capsys):
    rc = main(["flow", "--circuit", "s38417", "--scale", "0.015",
               "--tp", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "patterns" in out and "T_cp" in out and "chip" in out


def test_lbist_command(capsys):
    rc = main(["lbist", "--circuit", "s38417", "--scale", "0.02",
               "--patterns", "256", "--tp", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "FC no TPs" in out


def test_render_command(tmp_path, capsys):
    rc = main(["render", "--circuit", "s38417", "--scale", "0.02",
               "--tp", "2", "--out", str(tmp_path)])
    assert rc == 0
    for stage in ("floorplan", "placement", "routed"):
        path = tmp_path / f"s38417_{stage}.svg"
        assert path.exists()
        assert path.read_text().startswith("<svg")


def test_unknown_circuit_rejected():
    with pytest.raises(SystemExit):
        main(["flow", "--circuit", "nope"])


def test_unknown_circuit_exits_2_with_did_you_mean(capsys):
    with pytest.raises(SystemExit) as err:
        main(["sweep", "--circuit", "s38416"])
    assert err.value.code == 2  # usage error, not a KeyError traceback
    stderr = capsys.readouterr().err
    assert "unknown circuit 's38416'" in stderr
    assert "did you mean 's38417'?" in stderr
    assert "control_core" in stderr  # the full choices list prints too


def test_resume_without_cache_dir_rejected(capsys):
    with pytest.raises(SystemExit) as err:
        main(["sweep", "--resume"])
    assert err.value.code == 2
    assert "--resume needs --cache-dir" in capsys.readouterr().err


def test_resume_with_no_cache_rejected(capsys):
    with pytest.raises(SystemExit) as err:
        main(["sweep", "--resume", "--cache-dir", "/tmp/x", "--no-cache"])
    assert err.value.code == 2


def test_degraded_sweep_prints_failures_and_exits_3(tmp_path, capsys):
    from repro.chaos import FaultPlan, FaultSpec

    plan_path = tmp_path / "plan.json"
    FaultPlan(faults=(
        FaultSpec(kind="raise", circuit="s38417", tp_percent=2.0,
                  stage="tpi_scan", times=-1),
    )).save(plan_path)
    rc = main(["sweep", "--circuit", "s38417", "--scale", "0.01",
               "--tp-percents", "0,2", "--retries", "0",
               "--cache-dir", str(tmp_path / "cache"),
               "--chaos", str(plan_path)])
    assert rc == 3
    out = capsys.readouterr().out
    assert "Table 1" in out  # tables render despite the hole
    assert "FAILED cells (1" in out
    assert "InjectedFault" in out
    assert "journal" in out


def test_sweep_resume_completes_after_chaos(tmp_path, capsys):
    from repro.chaos import FaultPlan, FaultSpec

    plan_path = tmp_path / "plan.json"
    FaultPlan(faults=(
        FaultSpec(kind="raise", circuit="s38417", tp_percent=2.0,
                  stage="tpi_scan", times=-1),
    )).save(plan_path)
    cache = str(tmp_path / "cache")
    assert main(["sweep", "--circuit", "s38417", "--scale", "0.01",
                 "--tp-percents", "0,2", "--retries", "0",
                 "--cache-dir", cache, "--chaos", str(plan_path)]) == 3
    capsys.readouterr()
    rc = main(["sweep", "--circuit", "s38417", "--scale", "0.01",
               "--tp-percents", "0,2", "--cache-dir", cache, "--resume"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "served from cache: 0%" in out
    assert "FAILED" not in out


def test_selflint_command_gates_on_baseline(tmp_path, capsys):
    # The real tree against the committed baseline: clean, exit 0.
    assert main(["selflint"]) == 0
    assert "self-lint OK" in capsys.readouterr().out

    # A dirty scratch tree with no baseline: exit 4 with findings.
    src = tmp_path / "src"
    src.mkdir()
    (src / "dirty.py").write_text("def f(x):\n    return list(set(x))\n")
    rc = main(["selflint", "--src", str(src),
               "--baseline", str(tmp_path / "baseline.json"),
               "--json", str(tmp_path / "report.json")])
    assert rc == 4
    assert "SELF005" in capsys.readouterr().out
    assert json.loads((tmp_path / "report.json").read_text())["schema"] == 2


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_negative_tp_percents_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--tp-percents", "0,-1,2"])
    assert "non-negative" in capsys.readouterr().err


def test_duplicate_tp_percents_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--tp-percents", "0,2,2"])
    assert "duplicate" in capsys.readouterr().err


def test_garbage_tp_percents_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "--tp-percents", "0,two"])
    assert "comma-separated" in capsys.readouterr().err


def test_flow_trace_writes_valid_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "flow.json"
    rc = main(["flow", "--circuit", "s38417", "--scale", "0.012",
               "--tp", "2", "--trace", str(trace_path)])
    assert rc == 0
    obj = json.loads(trace_path.read_text())
    assert validate_chrome_trace(obj) == []
    out = capsys.readouterr().out
    assert "wrote trace" in out
    assert "tpi_scan" in out  # the per-stage summary table printed


def test_sweep_trace_merges_levels_into_one_file(tmp_path, capsys):
    trace_path = tmp_path / "sweep.json"
    rc = main(["sweep", "--circuit", "s38417", "--scale", "0.01",
               "--tp-percents", "0,2", "--trace", str(trace_path)])
    assert rc == 0
    obj = json.loads(trace_path.read_text())
    assert validate_chrome_trace(obj) == []
    names = {e["name"] for e in obj["traceEvents"]}
    assert "tpi_scan" in names and "atpg" in names
    out = capsys.readouterr().out
    assert "Stage runtimes" in out


# ----------------------------------------------------------------------
# Service subcommands (submit / status / result / cancel)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service_daemon(tmp_path_factory):
    from repro.service import ServiceConfig, ServiceThread

    cache_dir = tmp_path_factory.mktemp("cli_service")
    with ServiceThread(ServiceConfig(port=0, cache_dir=str(cache_dir),
                                     job_workers=1)) as thread:
        yield thread


def test_submit_wait_prints_same_tables_as_sweep(service_daemon,
                                                 capsys):
    rc = main(["submit", "--circuit", "s38417", "--scale", "0.012",
               "--tp-percents", "0,2", "--url", service_daemon.base_url,
               "--wait", "--timeout", "300"])
    assert rc == 0
    out = capsys.readouterr().out
    job_id = out.split()[1]
    assert "Table 1" in out and "Table 3" in out

    # status and result keep working after completion.
    rc = main(["status", job_id, "--url", service_daemon.base_url])
    assert rc == 0
    out = capsys.readouterr().out
    assert "done" in out and "cells 2/2" in out

    rc = main(["result", job_id, "--url", service_daemon.base_url])
    assert rc == 0
    assert "Table 2" in capsys.readouterr().out


def test_submit_without_wait_prints_poll_hints(service_daemon, capsys):
    rc = main(["submit", "--circuit", "s38417", "--scale", "0.012",
               "--tp-percents", "0,2", "--url",
               service_daemon.base_url])
    assert rc == 0
    out = capsys.readouterr().out
    assert "python -m repro status" in out
    job_id = out.split()[1]
    rc = main(["cancel", job_id, "--url", service_daemon.base_url])
    assert rc == 0


def test_service_error_prints_cleanly_not_a_traceback(service_daemon,
                                                      capsys):
    rc = main(["status", "jmissing", "--url", service_daemon.base_url])
    assert rc == 1
    err = capsys.readouterr().err
    assert "service error" in err and "404" in err


def test_submit_rejects_unknown_circuit_locally(capsys):
    # The CLI's did-you-mean fires before any socket is opened.
    with pytest.raises(SystemExit) as err:
        main(["submit", "--circuit", "s38416", "--url",
              "http://127.0.0.1:1"])
    assert err.value.code == 2
    assert "did you mean 's38417'?" in capsys.readouterr().err
