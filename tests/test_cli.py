"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_flow_command(capsys):
    rc = main(["flow", "--circuit", "s38417", "--scale", "0.015",
               "--tp", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "patterns" in out and "T_cp" in out and "chip" in out


def test_lbist_command(capsys):
    rc = main(["lbist", "--circuit", "s38417", "--scale", "0.02",
               "--patterns", "256", "--tp", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "FC no TPs" in out


def test_render_command(tmp_path, capsys):
    rc = main(["render", "--circuit", "s38417", "--scale", "0.02",
               "--tp", "2", "--out", str(tmp_path)])
    assert rc == 0
    for stage in ("floorplan", "placement", "routed"):
        path = tmp_path / f"s38417_{stage}.svg"
        assert path.exists()
        assert path.read_text().startswith("<svg")


def test_unknown_circuit_rejected():
    with pytest.raises(SystemExit):
        main(["flow", "--circuit", "nope"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
