"""Tests for the paper's test-data equations and table metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.core import TestDataMetrics, percent_change
from repro.core import test_application_time_cycles as tat_cycles
from repro.core import test_data_volume_bits as tdv_bits


def test_equation_1_exact():
    # TDV = 2 * n * ((l_max + 1) * p + l_max)
    assert tdv_bits(4, 100, 500) == 2 * 4 * (101 * 500 + 100)


def test_equation_2_exact():
    # TAT = (l_max + 1) * p + 2 * l_max
    assert tat_cycles(4, 100, 500) == 101 * 500 + 200


@given(st.integers(1, 64), st.integers(1, 500), st.integers(0, 5000))
def test_equations_monotone_in_patterns(n, lmax, p):
    assert (
        tdv_bits(n, lmax, p + 1)
        > tdv_bits(n, lmax, p)
    )
    assert (
        tat_cycles(n, lmax, p + 1)
        > tat_cycles(n, lmax, p)
    )


@given(st.integers(1, 64), st.integers(1, 500), st.integers(0, 5000))
def test_tdv_scales_with_chains(n, lmax, p):
    assert (
        tdv_bits(n + 1, lmax, p)
        > tdv_bits(n, lmax, p)
    )
    # TAT is independent of the chain count (shift depth matters).
    assert (
        tat_cycles(n + 1, lmax, p)
        == tat_cycles(n, lmax, p)
    )


def test_metrics_dataclass_properties():
    m = TestDataMetrics(
        n_test_points=16, n_flip_flops=1652, n_chains=17, l_max=100,
        n_faults=30000, fault_coverage=0.991, fault_efficiency=0.995,
        n_patterns=250,
    )
    assert m.tdv_bits == tdv_bits(17, 100, 250)
    assert m.tat_cycles == tat_cycles(17, 100, 250)


def test_percent_change():
    assert percent_change(200, 100) == pytest.approx(-50.0)
    assert percent_change(100, 105) == pytest.approx(5.0)
    assert percent_change(0, 100) == 0.0


def test_balanced_chains_reduce_tat():
    """More, shorter chains cut TAT at constant FF count (paper 4.2)."""
    ffs = 1600
    patterns = 300
    single = tat_cycles(1, ffs, patterns)
    many = tat_cycles(16, ffs // 16, patterns)
    assert many < single / 10
