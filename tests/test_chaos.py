"""Fault-injection suite: the sweep engine under scripted failures.

Every test drives the real executor against a deterministic
:class:`repro.chaos.FaultPlan` — injected exceptions, hung stages,
worker kills (``os._exit`` inside the pool) and torn cache writes —
and asserts the sweep degrades exactly as designed: retries recover
transient faults, the watchdog times out hangs, crash culprits are
identified by solo isolation, failed cells become structured
:class:`TaskFailure` holes, and ``resume`` completes the sweep with
output byte-identical to a clean serial run.

CI runs this file as the dedicated ``chaos`` job.
"""

from __future__ import annotations

import functools
import glob
import json

import pytest

from repro import api
from repro.api import CIRCUITS
from repro.atpg.engine import AtpgConfig
from repro.chaos import ENV_VAR, FaultPlan, FaultSpec
from repro.core import (
    ExecutorConfig,
    ExperimentConfig,
    SweepExecutionError,
    format_table1,
    format_table2,
    format_table3,
    read_journal,
    run_experiment,
)
from repro.core import executor as executor_mod
from repro.core.executor import run_sweeps, run_sweeps_report
from repro.core.flow import FlowConfig
from repro.core.resilience import completed_keys

#: Cheap-but-real ATPG settings: full flow semantics, bounded search.
FAST_ATPG = AtpgConfig(seed=7, backtrack_limit=24, max_deterministic=60,
                       abort_recovery_blocks=4, second_chance_factor=1)
SCALE = 0.008


def _experiment(name: str, tp_percents=(0.0, 1.0)) -> ExperimentConfig:
    """A registry circuit's sweep at test scale."""
    spec = CIRCUITS[name]
    flow = FlowConfig(atpg=FAST_ATPG).replace(**spec.flow_defaults)
    return ExperimentConfig(
        name=name,
        circuit_factory=functools.partial(spec.factory, scale=SCALE),
        flow=flow,
        tp_percents=tuple(tp_percents),
    )


def _executor(tmp_path, **kwargs) -> ExecutorConfig:
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("backoff_base_s", 0.01)
    return ExecutorConfig(**kwargs)


# ----------------------------------------------------------------------
# Serial-path fault handling
# ----------------------------------------------------------------------
def test_serial_retry_recovers_transient_fault(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="raise", circuit="s38417", tp_percent=1.0,
                  stage="sta", times=1),
    ))
    report = run_sweeps_report(
        [_experiment("s38417")],
        _executor(tmp_path, jobs=1, retries=1, chaos=plan),
    )
    assert report.ok
    assert report.retries == 1
    assert report.successful_cells() == 2
    events = read_journal(report.journal_path)
    failed = [e for e in events if e["event"] == "task_failed"]
    assert len(failed) == 1
    assert failed[0]["error_type"] == "InjectedFault"
    assert failed[0]["will_retry"] is True


def test_fatal_error_is_not_retried(tmp_path, monkeypatch):
    def bad_flow(*args, **kwargs):
        raise ValueError("config rejected")

    monkeypatch.setattr(executor_mod, "run_flow", bad_flow)
    report = run_sweeps_report(
        [_experiment("s38417", tp_percents=(0.0,))],
        _executor(tmp_path, jobs=1, retries=3),
    )
    assert not report.ok
    assert report.retries == 0  # fatal: no budget burned
    (failure,) = report.failures
    assert failure.attempts == 1
    assert failure.error_type == "ValueError"
    assert not failure.retryable


def test_exhausted_retries_leave_structured_hole(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="raise", circuit="s38417", tp_percent=1.0,
                  stage="tpi_scan", times=-1),
    ))
    report = run_sweeps_report(
        [_experiment("s38417")],
        _executor(tmp_path, jobs=1, retries=1, chaos=plan),
    )
    assert not report.ok
    (failure,) = report.failures
    assert (failure.name, failure.tp_percent) == ("s38417", 1.0)
    assert failure.attempts == 2  # first try + one retry
    assert failure.error_type == "InjectedFault"
    assert failure.retryable  # budget spent, not hopeless
    assert failure.chain and failure.cache_key
    # The surviving cell still renders: graceful degradation.
    result = report.results["s38417"]
    assert sorted(result.runs) == [0.0]
    assert report.failed_cells() == (("s38417", 1.0),)


def test_fail_fast_aborts_remaining_cells(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="raise", circuit="s38417", tp_percent=0.0,
                  stage="tpi_scan", times=-1),
    ))
    report = run_sweeps_report(
        [_experiment("s38417", tp_percents=(0.0, 1.0, 2.0))],
        _executor(tmp_path, jobs=1, retries=0, fail_fast=True, chaos=plan),
    )
    assert len(report.failures) == 3
    by_pct = {f.tp_percent: f for f in report.failures}
    assert by_pct[0.0].error_type == "InjectedFault"
    assert by_pct[1.0].error_type == "SweepAborted"
    assert by_pct[1.0].attempts == 0
    assert by_pct[2.0].error_type == "SweepAborted"
    assert report.successful_cells() == 0


def test_run_sweeps_raises_with_backcompat_failures(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="raise", circuit="s38417", tp_percent=1.0,
                  stage="tpi_scan", times=-1),
    ))
    with pytest.raises(SweepExecutionError) as err:
        run_sweeps(
            [_experiment("s38417")],
            _executor(tmp_path, jobs=1, retries=0, chaos=plan),
        )
    # The historical contract: (name, tp_percent, exception) triples.
    assert [(n, p, type(e).__name__) for n, p, e in err.value.failures] \
        == [("s38417", 1.0, "InjectedFault")]


def test_chaos_plan_threads_through_environment(tmp_path, monkeypatch):
    plan = FaultPlan(faults=(
        FaultSpec(kind="raise", circuit="s38417", tp_percent=0.0,
                  stage="tpi_scan", times=-1),
    ))
    monkeypatch.setenv(ENV_VAR, json.dumps(plan.to_dict()))
    report = run_sweeps_report(
        [_experiment("s38417", tp_percents=(0.0,))],
        _executor(tmp_path, jobs=1, retries=0),
    )
    (failure,) = report.failures
    assert failure.error_type == "InjectedFault"


# ----------------------------------------------------------------------
# Parallel-path fault handling: watchdog and crash isolation
# ----------------------------------------------------------------------
def test_watchdog_times_out_hung_worker(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="hang", circuit="s38417", tp_percent=1.0,
                  stage="tpi_scan", times=-1, seconds=60.0),
    ))
    report = run_sweeps_report(
        [_experiment("s38417")],
        _executor(tmp_path, jobs=2, retries=0, task_timeout_s=3.0,
                  chaos=plan),
    )
    assert report.timeouts == 1
    (failure,) = report.failures
    assert failure.error_type == "TaskTimeoutError"
    assert (failure.name, failure.tp_percent) == ("s38417", 1.0)
    # The innocent cell sharing the pool still completed.
    assert report.successful_cells() == 1


def test_worker_kill_identified_by_solo_isolation(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="kill", circuit="s38417", tp_percent=1.0,
                  stage="tpi_scan", times=-1),
    ))
    report = run_sweeps_report(
        [_experiment("s38417", tp_percents=(0.0, 1.0, 2.0))],
        _executor(tmp_path, jobs=3, retries=0, chaos=plan),
    )
    assert report.worker_crashes >= 1
    (failure,) = report.failures
    assert failure.error_type == "WorkerCrashError"
    assert (failure.name, failure.tp_percent) == ("s38417", 1.0)
    # Pool breakage must not bill the innocent bystander cells.
    assert report.successful_cells() == 2


def test_kill_recovers_when_fault_is_transient(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="kill", circuit="s38417", tp_percent=1.0,
                  stage="tpi_scan", times=1),
    ))
    report = run_sweeps_report(
        [_experiment("s38417")],
        _executor(tmp_path, jobs=2, retries=1, chaos=plan),
    )
    assert report.ok
    assert report.worker_crashes >= 1
    assert report.successful_cells() == 2


# ----------------------------------------------------------------------
# Cache corruption and resume
# ----------------------------------------------------------------------
def test_torn_cache_write_quarantined_on_next_sweep(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="corrupt_cache", circuit="s38417", tp_percent=1.0),
    ))
    first = run_sweeps_report(
        [_experiment("s38417")],
        _executor(tmp_path, jobs=1, chaos=plan),
    )
    assert first.ok  # corruption is post-write; the run itself is fine
    second = run_sweeps_report(
        [_experiment("s38417")],
        _executor(tmp_path, jobs=1),
    )
    assert second.ok
    quarantined = glob.glob(str(tmp_path / "cache" / "**" / "*.corrupt"),
                            recursive=True)
    assert len(quarantined) == 1
    runs = second.results["s38417"].runs
    assert runs[0.0].from_cache          # clean entry served
    assert not runs[1.0].from_cache      # torn entry recomputed


def test_resume_completes_a_killed_sweep(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="kill", circuit="s38417", tp_percent=1.0,
                  stage="tpi_scan", times=-1),
    ))
    first = run_sweeps_report(
        [_experiment("s38417")],
        _executor(tmp_path, jobs=2, retries=0, chaos=plan),
    )
    assert not first.ok
    resumed = run_sweeps_report(
        [_experiment("s38417")],
        _executor(tmp_path, jobs=2, resume=True),
    )
    assert resumed.ok
    assert resumed.successful_cells() == 2
    assert resumed.results["s38417"].runs[0.0].from_cache
    events = read_journal(resumed.journal_path)
    assert [e["event"] for e in events if e["event"] == "task_resumed"] \
        == ["task_resumed"]
    # Both sweeps share one append-only journal.
    starts = [e for e in events if e["event"] == "sweep_start"]
    assert len(starts) == 2 and starts[1]["resume"] is True


# ----------------------------------------------------------------------
# Acceptance: the ISSUE's 18-cell chaos sweep
# ----------------------------------------------------------------------
def test_acceptance_18_cell_chaos_sweep_degrades_then_resumes(tmp_path):
    """Kill + hang + torn cache across 18 cells: >= 15 survive with
    accurate failure records, and a chaos-free resume completes the
    sweep byte-identically to a clean serial run."""
    circuits = ("s38417", "control_core", "p26909")
    levels = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)
    experiments = [_experiment(name, levels) for name in circuits]
    plan = FaultPlan(faults=(
        FaultSpec(kind="kill", circuit="s38417", tp_percent=2.0,
                  stage="scan_reorder", times=-1),
        FaultSpec(kind="hang", circuit="control_core", tp_percent=3.0,
                  stage="extraction", times=-1, seconds=60.0),
        FaultSpec(kind="corrupt_cache", circuit="p26909",
                  tp_percent=1.0),
    ))

    report = run_sweeps_report(
        experiments,
        _executor(tmp_path, jobs=3, retries=1, task_timeout_s=5.0,
                  chaos=plan),
    )
    assert report.successful_cells() >= 15
    failed = dict(report.failed_cells())
    by_cell = {(f.name, f.tp_percent): f for f in report.failures}
    kill = by_cell[("s38417", 2.0)]
    assert kill.error_type == "WorkerCrashError" and kill.attempts == 2
    hang = by_cell[("control_core", 3.0)]
    assert hang.error_type == "TaskTimeoutError" and hang.attempts == 2
    # The torn-cache cell and every innocent bystander still succeeded.
    assert ("p26909", 1.0) not in failed
    assert report.timeouts == 2 and report.worker_crashes >= 2

    # Resume with the fault plan disabled: the sweep completes...
    resumed = run_sweeps_report(
        experiments,
        _executor(tmp_path, jobs=3, retries=1, resume=True),
    )
    assert resumed.ok
    assert resumed.successful_cells() == 18
    # ...recomputing exactly the holes (plus the quarantined cell).
    quarantined = glob.glob(str(tmp_path / "cache" / "**" / "*.corrupt"),
                            recursive=True)
    assert len(quarantined) == 1
    events = read_journal(resumed.journal_path)
    assert len(completed_keys(events)) == 18

    # ...and its Tables 1/2/3 are byte-identical to a clean serial run.
    for experiment in experiments:
        clean = run_experiment(experiment)
        recovered = resumed.results[experiment.name]
        assert format_table1(recovered.table1_rows()) \
            == format_table1(clean.table1_rows())
        assert format_table2(recovered.table2_rows()) \
            == format_table2(clean.table2_rows())
        assert format_table3(recovered.table3_rows()) \
            == format_table3(clean.table3_rows())


# ----------------------------------------------------------------------
# Facade-level knobs
# ----------------------------------------------------------------------
def test_api_sweep_report_exposes_resilience_knobs(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="raise", circuit="s38417", tp_percent=1.0,
                  stage="sta", times=1),
    ))
    report = api.sweep_report(
        "s38417", scale=SCALE, tp_percents=(0.0, 1.0), jobs=1,
        cache_dir=str(tmp_path / "cache"), retries=1, chaos=plan,
        atpg=FAST_ATPG,
    )
    assert report.ok and report.retries == 1
    assert report.journal_path is not None


def test_api_sweep_resume_requires_cache_dir():
    with pytest.raises(ValueError, match="cache_dir"):
        api.sweep_report("s38417", scale=SCALE, resume=True)


def test_api_unknown_circuit_suggests_closest():
    with pytest.raises(KeyError, match="did you mean 's38417'"):
        api.sweep_report("s38416", scale=SCALE)
