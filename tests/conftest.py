"""Shared fixtures: the library and small session-cached circuits, plus
the ``--update-golden`` option of the golden-table regression tests."""

from __future__ import annotations

import pytest

from repro.circuits import s38417_like
from repro.library import cmos130
from repro.netlist import Circuit


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/ fixtures from the current outputs "
             "instead of diffing against them",
    )


@pytest.fixture()
def update_golden(request) -> bool:
    """True when the run should rewrite the golden fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def lib():
    """The shared 130 nm-class library."""
    return cmos130()


@pytest.fixture(scope="session")
def small_circuit(lib):
    """A small generated benchmark (session-cached, do not mutate)."""
    return s38417_like(scale=0.02)


@pytest.fixture()
def small_circuit_mutable(lib):
    """A fresh small benchmark safe to rewrite in the test."""
    return s38417_like(scale=0.02)


@pytest.fixture()
def tiny_pipeline(lib):
    """A hand-built two-stage pipeline used by timing/DFT tests.

    Structure::

        pi_a --\\
                NAND -- n1 -- FF1 -- q1 -- INV -- n2 -- FF2 -- q2 -> po
        pi_b --/
    """
    c = Circuit("tiny")
    c.add_clock("clk", 4000.0)
    c.add_input("pi_a")
    c.add_input("pi_b")
    c.add_net("n1")
    c.add_instance("g1", lib["NAND2_X1"], {"A": "pi_a", "B": "pi_b",
                                           "Z": "n1"})
    c.add_net("q1")
    c.add_instance("ff1", lib["DFF_X1"], {"D": "n1", "CLK": "clk",
                                          "Q": "q1"})
    c.add_net("n2")
    c.add_instance("g2", lib["INV_X1"], {"A": "q1", "Z": "n2"})
    c.add_net("q2")
    c.add_instance("ff2", lib["DFF_X1"], {"D": "n2", "CLK": "clk",
                                          "Q": "q2"})
    c.add_output("po", "q2")
    return c
