"""Tests for structural-Verilog interchange."""

import pytest

from repro.circuits import s38417_like
from repro.netlist import Circuit, from_verilog, to_verilog, validate


def test_round_trip_tiny(lib, tiny_pipeline):
    text = to_verilog(tiny_pipeline)
    back = from_verilog(text, lib)
    assert validate(back).ok
    assert back.stats() == tiny_pipeline.stats()
    assert [d.net for d in back.clocks] == ["clk"]
    assert back.clocks[0].period_ps == 4000.0


def test_round_trip_generated(lib):
    c = s38417_like(scale=0.01)
    back = from_verilog(to_verilog(c), lib)
    assert validate(back).ok
    assert back.stats() == c.stats()
    # Same cells on the same nets.
    for name, inst in c.instances.items():
        assert back.instances[name].cell.name == inst.cell.name
        assert back.instances[name].conns == inst.conns


def test_output_alias_round_trip(lib):
    c = Circuit("alias")
    c.add_input("a")
    c.add_net("inner")
    c.add_instance("g", lib["INV_X1"], {"A": "a", "Z": "inner"})
    c.add_output("out_port", "inner")
    text = to_verilog(c)
    assert "assign out_port = inner;" in text
    back = from_verilog(text, lib)
    assert back.output_net("out_port") == "inner"
    assert validate(back).ok


def test_unknown_cell_rejected(lib):
    text = """
    module m (a, y);
      input a;
      output y;
      MYSTERY u1 (.A(a), .Z(y));
    endmodule
    """
    with pytest.raises(KeyError):
        from_verilog(text, lib)


def test_missing_module_rejected(lib):
    with pytest.raises(ValueError):
        from_verilog("wire x;", lib)
