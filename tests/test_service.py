"""End-to-end tests for the sweep-serving daemon.

The daemon boots for real on a localhost ephemeral port
(:class:`~repro.service.server.ServiceThread`) and every interaction
goes over actual HTTP through :class:`~repro.service.client.ServiceClient`
— no mocked transport, so these tests cover the hand-rolled HTTP
parsing, the JSON codecs, the job queue and the executor underneath in
one piece.

The headline assertions are the service's two contracts:

* **Byte identity** — a sweep computed by the daemon has exactly the
  same canonical result bytes as the same sweep computed in-process by
  :func:`repro.api.sweep`.
* **Shared-cache dedup** — two clients submitting the same spec
  concurrently coalesce onto one computation: the second job is served
  entirely from the shared artifact cache, and ``/metrics`` shows the
  cache hits.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import api
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
    SweepRequest,
)
from repro.service.protocol import canonical_result_bytes

#: Cheap ATPG knobs, matching tests/test_executor.py's FAST_ATPG.
ATPG = {"seed": 7, "backtrack_limit": 24, "max_deterministic": 60,
        "abort_recovery_blocks": 4, "second_chance_factor": 1}
SCALE = 0.012
OPTIONS = {"atpg": ATPG}


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service_cache")
    with ServiceThread(ServiceConfig(port=0, cache_dir=str(cache_dir),
                                     job_workers=2)) as thread:
        yield thread


@pytest.fixture(scope="module")
def client(daemon):
    return ServiceClient(daemon.base_url, timeout_s=10.0)


def submit(client, tp_percents, **overrides):
    request = SweepRequest(circuit="s38417", scale=SCALE,
                           tp_percents=tp_percents, options=OPTIONS,
                           **overrides)
    return client.submit(request)


# ----------------------------------------------------------------------
# Liveness and metrics
# ----------------------------------------------------------------------
def test_healthz(client):
    payload = client.healthz()
    assert payload["status"] == "ok"
    assert payload["job_workers"] == 2
    assert payload["uptime_s"] >= 0


def test_metrics_shape(client):
    metrics = client.metrics()
    for key in ("jobs_submitted", "jobs_completed", "queue_depth",
                "running_jobs", "worker_utilization", "cache_hit_rate",
                "cache_hits", "cache_misses", "cache_evictions",
                "jobs_by_state"):
        assert key in metrics, key


# ----------------------------------------------------------------------
# The byte-identity contract
# ----------------------------------------------------------------------
def test_daemon_result_is_byte_identical_to_api_sweep(client):
    levels = (0.0, 2.0)
    record = submit(client, levels)
    final = client.wait(record.id, timeout_s=300)
    assert final["state"] == "done"
    assert final["progress"]["done"] == len(levels)
    assert final["progress"]["finished"]

    report = client.result(record.id)
    served = report.results["s38417"]

    local = api.sweep("s38417", scale=SCALE, tp_percents=levels,
                      **OPTIONS)
    assert (canonical_result_bytes(served)
            == canonical_result_bytes(local))
    # The decoded result quacks like api.sweep's: same tables.
    assert served.table1_rows() == local.table1_rows()
    assert served.table2_rows() == local.table2_rows()
    assert served.table3_rows() == local.table3_rows()


# ----------------------------------------------------------------------
# Shared-cache dedup between concurrent tenants
# ----------------------------------------------------------------------
def test_concurrent_identical_submissions_dedup(daemon, client):
    levels = (1.0, 3.0)  # fresh levels: cold cache for this spec
    before = client.metrics()

    second_client = ServiceClient(daemon.base_url, timeout_s=10.0)
    first = submit(client, levels)
    second = submit(second_client, levels)

    # The daemon spotted the identical in-flight spec at submit time.
    assert second.coalesced_with == first.id

    done = {}

    def wait_for(client_, record, slot):
        done[slot] = client_.wait(record.id, timeout_s=300)

    threads = [
        threading.Thread(target=wait_for, args=(client, first, "a")),
        threading.Thread(target=wait_for,
                         args=(second_client, second, "b")),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert done["a"]["state"] == "done"
    assert done["b"]["state"] == "done"

    report_a = client.result(first.id)
    report_b = second_client.result(second.id)
    assert (canonical_result_bytes(report_a.results["s38417"])
            == canonical_result_bytes(report_b.results["s38417"]))

    # One of the twins computed; the coalesced one was served entirely
    # from the shared artifact cache.
    assert all(run.from_cache
               for run in report_b.results["s38417"].runs.values())
    assert report_b.cache_hits == len(levels)

    after = client.metrics()
    assert after["jobs_coalesced"] >= before["jobs_coalesced"] + 1
    assert after["cache_hits"] >= before["cache_hits"] + len(levels)
    assert after["cache_hit_rate"] > 0


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
def test_cancel_queued_job_is_immediate(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path),
                           job_workers=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0)
        running = submit(client, (0.5,))
        queued = submit(client, (1.5,))  # worker is busy: stays queued

        record = client.cancel(queued.id)
        assert record.state == "cancelled"
        # A cancelled-while-queued job has no result, by design.
        with pytest.raises(ServiceError) as err:
            client.result(queued.id)
        assert err.value.status == 409

        final = client.wait(running.id, timeout_s=300)
        assert final["state"] == "done"  # the healthy job is unharmed


def test_cancel_running_job_stops_scheduling_cells(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path),
                           job_workers=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0)
        import time

        record = submit(client, (0.25, 1.25, 2.25, 3.25))
        # Let it start, then cancel mid-sweep.
        while client.status(record.id)["state"] == "queued":
            time.sleep(0.02)
        cancelled = client.cancel(record.id)
        assert cancelled.state in ("running", "cancelled")

        final = client.wait(record.id, timeout_s=300)
        assert final["state"] == "cancelled"
        progress = final["progress"]
        # Cooperative contract: not every cell ran.
        assert progress["done"] < progress["total"]


def test_cancel_terminal_job_is_noop(client):
    record = submit(client, (0.0, 2.0))
    client.wait(record.id, timeout_s=300)
    after = client.cancel(record.id)
    assert after.state == "done"  # unchanged, not "cancelled"


# ----------------------------------------------------------------------
# client.sweep <-> api.sweep interchangeability
# ----------------------------------------------------------------------
def test_client_sweep_mirrors_api_sweep_contract(client):
    served = client.sweep("s38417", scale=SCALE,
                          tp_percents=(0.0, 2.0), options=OPTIONS,
                          timeout_s=300)
    local = api.sweep("s38417", scale=SCALE, tp_percents=(0.0, 2.0),
                      **OPTIONS)
    assert (canonical_result_bytes(served)
            == canonical_result_bytes(local))


# ----------------------------------------------------------------------
# HTTP error contract
# ----------------------------------------------------------------------
def test_unknown_circuit_is_rejected_with_400(client):
    with pytest.raises(ServiceError) as err:
        client.submit(SweepRequest(circuit="s99999"))
    assert err.value.status == 400
    assert "s99999" in str(err.value)


def test_unknown_request_key_is_rejected_with_400(client):
    status, payload = client._request(
        "POST", "/sweeps",
        body={"circuit": "s38417", "tp_percent": 2.0})
    assert status == 400
    assert "tp_percent" in payload["error"]


def test_malformed_json_body_is_rejected_with_400(daemon):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", daemon.service.port,
                                      timeout=10)
    try:
        conn.request("POST", "/sweeps", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert "JSON" in payload["error"]
    finally:
        conn.close()


def test_unknown_job_is_404(client):
    with pytest.raises(ServiceError) as err:
        client.status("jdoesnotexist")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.result("jdoesnotexist")
    assert err.value.status == 404


def test_unknown_route_is_404(client):
    status, _ = client._request("GET", "/nope")
    assert status == 404
    status, _ = client._request("GET", "/sweeps/x/result/extra")
    assert status == 404


def test_wrong_method_is_405(client):
    status, _ = client._request("DELETE", "/healthz")
    assert status == 405
    status, _ = client._request("POST", "/metrics")
    assert status == 405


def test_result_of_unfinished_job_is_409(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path),
                           job_workers=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0)
        blocker = submit(client, (0.75,))
        queued = submit(client, (1.75,))
        with pytest.raises(ServiceError) as err:
            client.result(queued.id)
        assert err.value.status == 409
        client.cancel(queued.id)
        client.wait(blocker.id, timeout_s=300)


def test_kill_chaos_with_single_job_worker_is_rejected(client):
    # Build the wire payload by hand (the dataclass wants a FaultPlan).
    wire = SweepRequest(circuit="s38417", scale=SCALE,
                        tp_percents=(0.0,), options=OPTIONS,
                        jobs=1).to_wire()
    wire["chaos"] = {"faults": [{"kind": "kill", "stage": "tpi_scan"}]}
    status, payload = client._request("POST", "/sweeps", body=wire)
    assert status == 400
    assert "jobs > 1" in payload["error"]


def test_job_listing_covers_submissions(client):
    records = client.jobs()
    assert len(records) >= 1
    assert all(r.id.startswith("j") for r in records)


# ----------------------------------------------------------------------
# Telemetry: Prometheus scrape, content negotiation, traces
# ----------------------------------------------------------------------
def test_prom_scrape_is_valid_and_has_stage_histogram(client):
    from repro import obs

    record = submit(client, (0.0, 2.0))  # warm cache: fast
    final = client.wait(record.id, timeout_s=300)
    assert final["state"] == "done"

    text = client.metrics_prom()
    assert obs.validate_exposition(text) == []
    # Per-stage latency histogram with stage labels, the headline
    # family the CI scrape job asserts on.
    assert "# TYPE repro_stage_seconds histogram" in text
    assert 'stage="atpg"' in text
    assert "repro_stage_seconds_bucket" in text
    assert 'le="+Inf"' in text
    # Queue/cache/job gauges sampled at scrape time.
    for family in ("repro_job_queue_depth", "repro_worker_utilization",
                   "repro_cache_hit_rate", "repro_uptime_seconds",
                   "repro_jobs_total"):
        assert family in text, family


def test_metrics_content_negotiation(daemon, client):
    import http.client

    def fetch(path, accept=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.service.port, timeout=10)
        try:
            headers = {"Connection": "close"}
            if accept:
                headers["Accept"] = accept
            conn.request("GET", path, headers=headers)
            response = conn.getresponse()
            return (response.status,
                    response.getheader("Content-Type", ""),
                    response.read())
        finally:
            conn.close()

    # Default stays JSON for backward compatibility.
    status, ctype, body = fetch("/metrics")
    assert status == 200 and "application/json" in ctype
    assert "queue_depth" in json.loads(body)
    # Accept: text/plain negotiates the Prometheus encoding.
    status, ctype, body = fetch("/metrics", accept="text/plain")
    assert status == 200 and "text/plain" in ctype
    assert b"# TYPE" in body
    # An explicit ?format=json beats the Accept header.
    status, ctype, body = fetch("/metrics?format=json",
                                accept="text/plain")
    assert status == 200 and "application/json" in ctype
    # And ?format=prom needs no header at all.
    status, ctype, body = fetch("/metrics?format=prom")
    assert status == 200 and "text/plain" in ctype


def test_traced_job_yields_merged_chrome_trace(client):
    from repro import obs

    # Fresh levels: cache hits drop stored traces by design, so the
    # per-cell flow traces only exist when the cells really compute.
    record = submit(client, (0.33, 2.33), jobs=2, trace=True)
    final = client.wait(record.id, timeout_s=300)
    assert final["state"] == "done"

    merged = client.trace(record.id)
    assert obs.validate_chrome_trace(merged) == []
    events = merged["traceEvents"]
    # The job's own track (queue_wait + run) plus at least one worker
    # process: distinct virtual pids, stable from 1.
    pids = sorted({e["pid"] for e in events})
    assert pids[0] == 1 and len(pids) >= 2
    names = {e["name"] for e in events if e.get("ph") == "X"}
    assert {"queue_wait", "run"} <= names
    assert "atpg" in names  # per-cell stage spans rode along
    # Real pids preserved in track metadata.
    metas = [e for e in events
             if e.get("ph") == "M" and e["name"] == "process_name"]
    assert all("os_pid" in m["args"] for m in metas)


def test_untraced_job_still_has_job_level_trace(client):
    from repro import obs

    record = submit(client, (0.0,))
    client.wait(record.id, timeout_s=300)
    merged = client.trace(record.id)
    assert obs.validate_chrome_trace(merged) == []
    names = {e["name"] for e in merged["traceEvents"]
             if e.get("ph") == "X"}
    # Job lifecycle spans only — no per-cell stage spans.
    assert {"queue_wait", "run"} <= names
    assert "atpg" not in names


def test_trace_of_unknown_or_unfinished_job_is_404(tmp_path):
    config = ServiceConfig(port=0, cache_dir=str(tmp_path),
                           job_workers=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0)
        with pytest.raises(ServiceError) as err:
            client.trace("jdoesnotexist")
        assert err.value.status == 404

        blocker = submit(client, (0.75,))
        queued = submit(client, (1.75,))  # worker busy: stays queued
        with pytest.raises(ServiceError) as err:
            client.trace(queued.id)  # no trace before the job ran
        assert err.value.status == 404
        client.cancel(queued.id)
        client.wait(blocker.id, timeout_s=300)


def test_report_carries_wall_and_monotonic_stamps(client):
    record = submit(client, (0.0, 2.0))
    client.wait(record.id, timeout_s=300)
    report = client.result(record.id)
    assert report.started_at > 0 and report.finished_at >= (
        report.started_at)
    assert report.finished_mono >= report.started_mono > 0
    assert report.duration_s >= 0


def test_job_manager_restores_registry_on_shutdown(tmp_path):
    from repro import obs
    from repro.service.jobs import JobManager

    before = obs.get_registry()
    manager = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        assert obs.get_registry() is manager.registry
    finally:
        manager.shutdown()
    assert obs.get_registry() is before
