"""Tests for global placement and legalisation."""

import random

import pytest

from repro.layout import build_floorplan, global_place
from repro.library import ROW_HEIGHT_UM, SITE_WIDTH_UM


@pytest.fixture(scope="module")
def placed():
    from repro.circuits import s38417_like
    from repro.library import cmos130
    c = s38417_like(scale=0.03)
    plan = build_floorplan(c, 0.97)
    placement = global_place(c, plan)
    return c, plan, placement


def test_every_cell_placed_inside_core(placed):
    c, plan, placement = placed
    movable = [i for i in c.instances.values() if not i.cell.is_filler]
    assert len(placement.positions) == len(movable)
    for name, (x, y) in placement.positions.items():
        w = c.instances[name].cell.width_um
        assert plan.core.x0 - 1e-6 <= x - w / 2
        assert x + w / 2 <= plan.core.x1 + 1e-6
        assert plan.core.y0 <= y <= plan.core.y1


def test_no_overlaps_within_rows(placed):
    c, plan, placement = placed
    for row_idx, cells in enumerate(placement.rows_cells):
        spans = []
        for name in cells:
            x, _ = placement.positions[name]
            w = c.instances[name].cell.width_um
            spans.append((x - w / 2, x + w / 2, name))
        spans.sort()
        for (a0, a1, na), (b0, b1, nb) in zip(spans, spans[1:]):
            assert a1 <= b0 + 1e-6, f"{na} overlaps {nb} in row {row_idx}"


def test_rows_not_overfull(placed):
    c, plan, placement = placed
    occupancy = placement.row_occupancy_sites(c)
    for row, used in zip(plan.rows, occupancy):
        assert used <= row.n_sites


def test_cells_on_row_centerlines(placed):
    c, plan, placement = placed
    row_centers = {
        round(row.y + ROW_HEIGHT_UM / 2, 3) for row in plan.rows
    }
    for name, (x, y) in placement.positions.items():
        assert round(y, 3) in row_centers


def test_achieved_utilization_near_target(placed):
    c, plan, placement = placed
    assert placement.utilization(c) == pytest.approx(0.97, abs=0.05)


def test_placement_beats_random_wirelength(placed):
    c, plan, placement = placed
    hpwl = placement.total_hpwl_um(c)
    rng = random.Random(5)
    names = list(placement.positions)
    shuffled = list(placement.positions.values())
    rng.shuffle(shuffled)
    saved = dict(placement.positions)
    placement.positions = dict(zip(names, shuffled))
    random_hpwl = placement.total_hpwl_um(c)
    placement.positions = saved
    assert hpwl < 0.75 * random_hpwl


def test_placement_deterministic():
    from repro.circuits import s38417_like
    c1 = s38417_like(scale=0.02)
    c2 = s38417_like(scale=0.02)
    p1 = global_place(c1, build_floorplan(c1, 0.9))
    p2 = global_place(c2, build_floorplan(c2, 0.9))
    assert p1.positions == p2.positions
