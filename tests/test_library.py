"""Tests for the 130 nm-class cell library."""

import pytest

from repro.library import (
    ROW_HEIGHT_UM,
    SITE_WIDTH_UM,
    build_cmos130_library,
    exhaustive_truth_table,
    metal_stack_130nm,
    average_signal_rc,
    signal_layers,
)


def test_expected_cells_present(lib):
    for name in ("INV_X1", "NAND2_X1", "NAND4_X2", "XOR2_X1", "MUX2_X2",
                 "DFF_X1", "SDFF_X1", "TSFF_X1", "CLKBUF_X4", "FILL1"):
        assert name in lib


def test_cell_geometry(lib):
    inv = lib["INV_X1"]
    assert inv.width_um == pytest.approx(3 * SITE_WIDTH_UM)
    assert inv.height_um == ROW_HEIGHT_UM
    assert inv.area_um2 == pytest.approx(inv.width_um * ROW_HEIGHT_UM)


def test_tsff_is_scan_ff_plus_mux_area(lib):
    """The TSFF area premium over the scan FF is about one mux."""
    tsff, sdff, mux = lib["TSFF_X1"], lib["SDFF_X1"], lib["MUX2_X1"]
    premium = tsff.width_sites - sdff.width_sites
    assert 0 < premium <= mux.width_sites + 2


def test_drive_families_ordered(lib):
    family = lib.family("INV")
    assert [c.drive for c in family] == [1, 2, 4]
    # Stronger drives have lower load sensitivity.
    weak = family[0].arc("A", "Z").delay.lookup(40.0, 30.0).value
    strong = family[-1].arc("A", "Z").delay.lookup(40.0, 30.0).value
    assert strong < weak


def test_functions_match_names(lib):
    assert exhaustive_truth_table(
        lib["NAND2_X1"].functions["Z"], ["A", "B"]) == [1, 1, 1, 0]
    assert exhaustive_truth_table(
        lib["NOR2_X1"].functions["Z"], ["A", "B"]) == [1, 0, 0, 0]
    assert exhaustive_truth_table(
        lib["XOR2_X1"].functions["Z"], ["A", "B"]) == [0, 1, 1, 0]
    assert exhaustive_truth_table(
        lib["AOI21_X1"].functions["Z"], ["A", "B", "C"]
    ) == [1, 1, 1, 0, 0, 0, 0, 0]


def test_sequential_specs(lib):
    sdff = lib["SDFF_X1"].sequential
    assert sdff.scan_in == "TI" and sdff.scan_enable == "TE"
    assert sdff.test_point_enable is None
    tsff = lib["TSFF_X1"].sequential
    assert tsff.test_point_enable == "TR"
    assert lib["TSFF_X1"].is_tsff and lib["TSFF_X1"].is_scan
    assert not lib["SDFF_X1"].is_tsff


def test_tsff_has_transparent_arc(lib):
    tsff = lib["TSFF_X1"]
    arc = tsff.arc("D", "Q")
    assert arc.delay.lookup(40.0, 10.0).value > 0
    # Plain FF has no data->output arc.
    with pytest.raises(KeyError):
        lib["DFF_X1"].arc("D", "Q")


def test_fillers_and_clock_buffers(lib):
    fillers = lib.fillers()
    assert [f.width_sites for f in fillers] == [1, 2, 4, 8]
    assert all(not f.pins for f in fillers)
    clkbufs = lib.clock_buffers()
    assert clkbufs and all(c.is_clock_buffer for c in clkbufs)


def test_library_rejects_duplicates():
    lib2 = build_cmos130_library()
    with pytest.raises(ValueError):
        lib2.add(lib2["INV_X1"])


def test_metal_stack_shape():
    stack = metal_stack_130nm()
    assert len(stack) == 6
    assert [l.direction for l in stack] == ["H", "V", "H", "V", "H", "V"]
    sig = signal_layers(stack)
    assert [l.index for l in sig] == [2, 3, 4, 5]
    r, c = average_signal_rc(stack)
    assert r > 0 and c > 0
    # Upper layers are faster than lower ones.
    assert stack[4].r_ohm_per_um < stack[2].r_ohm_per_um
