"""Tests for cross-process trace aggregation.

The stitcher's contract: align traces on the shared monotonic clock
(wall fallback for old traces), renumber real pids to stable virtual
pids ``1..N`` so re-merging is byte-identical, keep the OS pid in the
``process_name`` metadata, and always emit something
:func:`repro.obs.validate_chrome_trace` accepts.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.merge import TRACE_FILE_KEY


def _trace(label: str, pid: int, wall: float, mono: float,
           spans=((0.0, 0.5, "work"),)) -> obs.Trace:
    t = obs.Trace(label=label, pid=pid, wall_epoch=wall, mono_epoch=mono)
    for t_start, t_end, name in spans:
        t.spans.append(obs.Span(name=name, t_start=t_start, t_end=t_end))
    return t


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def test_trace_dict_round_trip():
    t = _trace("cell", pid=41, wall=100.0, mono=7.5)
    t.spans[0].counters["backtracks"] = 3.0
    t.spans[0].gauges["budget"] = 0.5
    t.spans[0].children.append(obs.Span(name="inner", t_start=0.1,
                                        t_end=0.2))
    t.counters["cells"] = 2.0
    t.gauges["util"] = 0.9
    back = obs.trace_from_dict(obs.trace_to_dict(t))
    assert back == t


def test_trace_from_dict_tolerates_missing_mono_epoch():
    data = obs.trace_to_dict(_trace("old", 1, 5.0, 9.0))
    del data["mono_epoch"]
    assert obs.trace_from_dict(data).mono_epoch == 0.0


def test_write_and_read_trace_file(tmp_path):
    path = tmp_path / "a.trace.json"
    traces = [_trace("x", 1, 1.0, 1.0), None, _trace("y", 2, 2.0, 2.0)]
    assert obs.write_trace_file(path, traces) == 2  # None skipped
    back = obs.read_trace_file(path)
    assert [t.label for t in back] == ["x", "y"]
    assert json.loads(path.read_text()).keys() == {TRACE_FILE_KEY}


def test_read_trace_file_accepts_bare_trace(tmp_path):
    path = tmp_path / "bare.json"
    path.write_text(json.dumps(obs.trace_to_dict(_trace("solo", 3,
                                                        1.0, 1.0))))
    (only,) = obs.read_trace_file(path)
    assert only.label == "solo" and only.pid == 3


def test_read_trace_file_rejects_junk(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text('{"not": "a trace"}')
    with pytest.raises(ValueError):
        obs.read_trace_file(path)


def test_collect_trace_files_expands_directories(tmp_path):
    (tmp_path / "b.trace.json").write_text("{}")
    (tmp_path / "a.trace.json").write_text("{}")
    (tmp_path / "ignored.json").write_text("{}")
    loose = tmp_path / "loose.json"
    loose.write_text("{}")
    got = obs.collect_trace_files([str(tmp_path), str(loose)])
    assert got == [str(tmp_path / "a.trace.json"),
                   str(tmp_path / "b.trace.json"),
                   str(loose)]


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
def test_merge_assigns_stable_virtual_pids():
    traces = [
        _trace("worker-b", pid=9001, wall=10.0, mono=100.0),
        _trace("worker-a", pid=4242, wall=10.0, mono=100.0),
        _trace("worker-b2", pid=9001, wall=10.5, mono=100.5),
    ]
    merged = obs.merge_traces(traces)
    assert obs.validate_chrome_trace(merged) == []
    meta = [e for e in merged["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"]
    # Real pids 4242 and 9001 become virtual pids 1 and 2 (sorted by
    # (pid, epoch, label)); the OS pid survives in the metadata args.
    by_os_pid = {m["args"]["os_pid"]: m["pid"] for m in meta}
    assert by_os_pid == {4242: 1, 9001: 2}
    # Same process twice -> same vpid, distinct tids.
    tids = sorted(m["tid"] for m in meta if m["args"]["os_pid"] == 9001)
    assert tids == [1, 2]


def test_merge_is_deterministic_regardless_of_input_order():
    traces = [_trace(f"t{i}", pid=100 + i, wall=float(i),
                     mono=50.0 + i) for i in range(4)]
    a = json.dumps(obs.merge_traces(traces), sort_keys=True)
    b = json.dumps(obs.merge_traces(list(reversed(traces))),
                   sort_keys=True)
    assert a == b


def test_merge_aligns_on_monotonic_clock():
    # Same machine: mono epochs 2s apart, wall epochs wildly skewed.
    early = _trace("early", pid=1, wall=1000.0, mono=500.0)
    late = _trace("late", pid=2, wall=10.0, mono=502.0)
    merged = obs.merge_traces([early, late])
    assert merged["otherData"]["clock"] == "monotonic"
    spans = {e["pid"]: e for e in merged["traceEvents"]
             if e.get("ph") == "X"}
    # late's offset is (502-500)s = 2e6 us despite its "older" wall.
    assert spans[1]["ts"] == pytest.approx(0.0)
    assert spans[2]["ts"] == pytest.approx(2e6)


def test_merge_falls_back_to_wall_clock():
    # One trace without mono_epoch (old pickle) forces wall alignment.
    a = _trace("new", pid=1, wall=100.0, mono=50.0)
    b = _trace("old", pid=2, wall=101.0, mono=0.0)
    merged = obs.merge_traces([a, b])
    assert merged["otherData"]["clock"] == "wall"
    old_span = [e for e in merged["traceEvents"]
                if e.get("ph") == "X" and e["pid"] == 2][0]
    assert old_span["ts"] == pytest.approx(1e6)
    assert obs.validate_chrome_trace(merged) == []


def test_merge_empty_input():
    merged = obs.merge_traces([None, None])
    assert merged["traceEvents"] == []
    assert obs.validate_chrome_trace(merged) == []


def test_merge_carries_trace_totals():
    t = _trace("tot", pid=1, wall=1.0, mono=1.0)
    t.counters["cells_done"] = 3.0
    merged = obs.merge_traces([t])
    instant = [e for e in merged["traceEvents"] if e.get("ph") == "I"]
    assert instant and instant[0]["args"]["cells_done"] == 3.0


def test_write_merged_trace(tmp_path):
    path = tmp_path / "merged.json"
    obj = obs.write_merged_trace(path, [_trace("w", 1, 1.0, 1.0)])
    assert json.loads(path.read_text()) == obj


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def test_summarize_merged_lists_tracks_and_spans():
    traces = [
        _trace("cell a", pid=10, wall=1.0, mono=1.0,
               spans=((0.0, 1.0, "atpg"), (1.0, 1.5, "route"))),
        _trace("cell b", pid=11, wall=1.0, mono=1.0,
               spans=((0.0, 0.25, "atpg"),)),
    ]
    text = obs.summarize_merged(obs.merge_traces(traces))
    assert "track pid=1 tid=1 (cell a)" in text
    assert "track pid=2 tid=1 (cell b)" in text
    assert "atpg" in text and "route" in text


def test_summarize_merged_empty():
    assert obs.summarize_merged({"traceEvents": []}) == (
        "(no complete events)")
