"""Flow variants: the p26909-style configuration and hold fixing."""

import pytest

from repro.circuits import dsp_core_p26909
from repro.core import FlowConfig, run_flow
from repro.library import cmos130


@pytest.fixture(scope="module")
def dsp_flow():
    circuit = dsp_core_p26909(scale=0.02)
    return run_flow(circuit, cmos130(), FlowConfig(
        tp_percent=2.0,
        target_utilization=0.50,
        max_chain_length=None,
        n_chains=8,
        run_atpg_phase=False,
    ))


def test_dsp_chain_count_fixed(dsp_flow):
    assert dsp_flow.chains.n_chains == 8


def test_dsp_low_utilization_layout(dsp_flow):
    placement = dsp_flow.placement
    util = placement.utilization(dsp_flow.circuit)
    # Fillers are counted too: the *logic* share should be near 50%.
    logic_sites = sum(
        inst.cell.width_sites
        for inst in dsp_flow.circuit.instances.values()
        if not inst.cell.is_filler
    )
    total_sites = sum(r.n_sites for r in dsp_flow.plan.rows)
    assert logic_sites / total_sites == pytest.approx(0.50, abs=0.08)
    # With fillers every row is full.
    assert util == pytest.approx(1.0, abs=1e-6)


def test_dsp_congestion_mild_at_half_utilization(dsp_flow):
    # The paper runs p26909 at 50% utilisation to avoid congestion;
    # at half-full rows the router should see little overflow.
    report = dsp_flow.congestion
    assert report.mean_utilization < 1.0


def test_hold_fix_inserted_buffers_or_clean(dsp_flow):
    sta = dsp_flow.sta
    hold_buffers = [
        name for name in dsp_flow.circuit.instances
        if name.startswith("holdbuf")
    ]
    # Either there never were violations, or buffers fixed them (up to
    # the whitespace budget).
    if sta.hold_violations:
        assert hold_buffers, "violations left but no fix attempted"
    for name in hold_buffers:
        assert name in dsp_flow.placement.positions


def test_filler_fraction_large_at_half_utilization(dsp_flow):
    # ~50% of the rows is whitespace -> filled by fillers.
    assert dsp_flow.filler.filler_fraction > 0.3
