"""Property-based tests on core data structures and invariants."""

import math
import random

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.circuits import CircuitProfile, ClockSpec, generate
from repro.library import cmos130
from repro.library.nldm import NLDMTable
from repro.netlist import extract_comb_view, validate
from repro.scan import insert_scan, simulate_shift
from repro.testability import compute_cop, compute_scoap
from repro.testability.scoap import INFINITE


@st.composite
def profiles(draw):
    n_ffs = draw(st.integers(min_value=10, max_value=40))
    n_gates = draw(st.integers(min_value=60, max_value=300))
    return CircuitProfile(
        name="prop",
        n_inputs=draw(st.integers(min_value=4, max_value=12)),
        n_outputs=draw(st.integers(min_value=4, max_value=12)),
        n_flip_flops=n_ffs,
        n_gates=n_gates,
        clocks=(ClockSpec("clk", 5000.0, 1.0),),
        hard_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        datapath_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
    )


@given(profiles(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=12, deadline=None)
def test_generated_circuits_always_validate(profile, seed):
    circuit = generate(profile, cmos130(), seed=seed)
    report = validate(circuit)
    assert report.ok, report.errors[:3]
    # The combinational view is acyclic and complete in both modes.
    for mode in ("test", "functional"):
        view = extract_comb_view(circuit, mode)
        assert len(view.nodes) > 0


@given(profiles(), st.integers(min_value=0, max_value=2**16),
       st.integers(min_value=2, max_value=12))
@settings(max_examples=8, deadline=None)
def test_scan_chains_always_shift(profile, seed, max_len):
    circuit = generate(profile, cmos130(), seed=seed)
    config = insert_scan(circuit, cmos130(), max_chain_length=max_len)
    assert config.max_length <= max_len
    assert config.n_flip_flops == circuit.num_flip_flops
    rng = random.Random(seed)
    for chain in range(min(3, config.n_chains)):
        probe = [rng.getrandbits(1) for _ in range(6)]
        assert simulate_shift(circuit, config, probe, chain) == probe


@given(profiles(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_cop_values_are_probabilities(profile, seed):
    circuit = generate(profile, cmos130(), seed=seed)
    cop = compute_cop(extract_comb_view(circuit, "test"))
    for net, p in cop.p1.items():
        assert -1e-9 <= p <= 1 + 1e-9
        assert -1e-9 <= cop.obs[net] <= 1 + 1e-9
        for sv in (0, 1):
            assert -1e-9 <= cop.detection_probability(net, sv) <= 1 + 1e-9


@given(profiles(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_scoap_values_positive_and_bounded_below(profile, seed):
    circuit = generate(profile, cmos130(), seed=seed)
    view = extract_comb_view(circuit, "test")
    scoap = compute_scoap(view)
    inputs = set(view.input_nets)
    for net in scoap.cc0:
        if net in view.constants:
            continue
        assert scoap.cc0[net] >= 1 or net in inputs
        assert scoap.cc1[net] >= 1 or net in inputs
        assert scoap.co[net] >= 0


@given(
    st.floats(min_value=1.0, max_value=500.0),
    st.floats(min_value=0.05, max_value=3.0),
    st.floats(min_value=0.0, max_value=0.5),
)
@settings(max_examples=40, deadline=None)
def test_nldm_linear_tables_are_exact_on_grid(intrinsic, ppf, sens):
    table = NLDMTable.linear(intrinsic, ppf, sens)
    for s in table.slews:
        for c in table.loads:
            got = table.lookup(float(s), float(c))
            want = (intrinsic + ppf * c + sens * s
                    + 0.002 * ppf * c ** 1.5)
            assert got.value == pytest.approx(float(want), rel=1e-9)
            assert not got.extrapolated
