"""Full-size profile generation (structure only, no ATPG/layout).

Verifies the published-scale profiles materialise with the right
aggregate numbers — the quantities the paper's experiments are defined
against — and stay structurally valid.  ATPG/layout at these sizes is
exercised by the benchmarks with ``REPRO_BENCH_SCALE=1.0``, not here.
"""

import pytest

from repro.circuits import control_core, dsp_core_p26909, s38417_like
from repro.netlist import extract_comb_view, validate


@pytest.mark.parametrize("factory,ffs,tolerance", [
    (s38417_like, 1636, 0),
    (control_core, 2912, 0),
])
def test_full_scale_flip_flop_counts(factory, ffs, tolerance):
    circuit = factory(scale=1.0)
    assert circuit.num_flip_flops >= ffs  # profile FFs + capture FFs
    assert circuit.num_flip_flops - ffs <= 0 or True
    # Percent-of-FF budgets from the paper resolve to whole TSFFs.
    one_percent = round(0.01 * circuit.num_flip_flops)
    assert one_percent >= 16 * 0.9
    report = validate(circuit)
    assert report.ok, report.errors[:3]


def test_full_scale_s38417_interface():
    circuit = s38417_like(scale=1.0)
    # 28 data inputs + 1 clock; 106 outputs plus generator observation
    # ports.
    assert len(circuit.inputs) == 29
    assert len(circuit.outputs) >= 106
    view = extract_comb_view(circuit, "test")
    assert view.max_level() <= 60


def test_full_scale_p26909_structure():
    circuit = dsp_core_p26909(scale=1.0)
    assert circuit.num_flip_flops >= 11168
    assert circuit.clock_period_ps("clk") == 7143.0  # 140 MHz target
    assert validate(circuit).ok
