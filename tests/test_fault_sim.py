"""Tests for the fault model and the PPSFP fault simulator.

The fault simulator is validated against a brute-force reference that
re-simulates the whole circuit with the fault surgically injected into
the expression evaluation.
"""

import random

import pytest

from repro.atpg import (
    BitSimulator,
    Fault,
    FaultSimulator,
    FaultStatus,
    build_fault_list,
)
from repro.netlist import extract_comb_view
from repro.netlist.net import PORT


@pytest.fixture(scope="module")
def env():
    from repro.circuits import s38417_like
    c = s38417_like(scale=0.02)
    view = extract_comb_view(c, "test")
    sim = BitSimulator(view)
    return c, view, sim, FaultSimulator(sim), build_fault_list(c, view)


def _faulty_reference(view, assignment, fault):
    """Full faulty-machine simulation, fault injected during eval."""
    values = dict(assignment)
    for net, const in view.constants.items():
        values[net] = const

    def site_value():
        return fault.value

    if fault.sink is None and fault.net in values:
        values[fault.net] = site_value()
    for node in view.nodes:
        env = {}
        for pin, net in node.pin_nets.items():
            v = values[net]
            if net == fault.net and fault.sink == (node.inst.name, pin):
                v = site_value()
            env[pin] = v
        out = node.expr.eval2(env) & 1
        if fault.sink is None and node.out_net == fault.net:
            out = site_value()
        values[node.out_net] = out
    return values


def _reference_detects(view, assignment, fault):
    good = dict(assignment)
    for net, const in view.constants.items():
        good[net] = const
    for node in view.nodes:
        env = {pin: good[net] for pin, net in node.pin_nets.items()}
        good[node.out_net] = node.expr.eval2(env) & 1
    bad = _faulty_reference(view, assignment, fault)
    for net, (inst, pin) in view.output_refs:
        g = good[net]
        b = bad[net]
        if fault.sink == (inst, pin) and net == fault.net:
            b = fault.value
        if g != b:
            return True
    return False


def test_fault_list_census(env):
    circuit, view, _, fsim, flist = env
    assert flist.total > 0
    # Every fault has a status and a representative.
    assert set(flist.status) == set(flist.faults)
    # Scan-path faults pre-credited.
    assert flist.count(FaultStatus.SCAN_TESTED) > 0
    # Collapsing never crosses scan/capture status boundaries silently.
    for f, rep in flist.representative.items():
        assert flist.status[f] == flist.status[rep]


def test_fault_collapsing_through_inverters(env, lib):
    from repro.netlist import Circuit
    c = Circuit("t")
    c.add_input("a")
    c.add_net("n1")
    c.add_net("n2")
    c.add_instance("i1", lib["INV_X1"], {"A": "a", "Z": "n1"})
    c.add_instance("i2", lib["INV_X1"], {"A": "n1", "Z": "n2"})
    c.add_output("po", "n2")
    view = extract_comb_view(c, "test")
    flist = build_fault_list(c, view)
    rep_of = flist.representative
    # n1 sa0 is equivalent to a sa1 (through i1), n2 sa0 to n1 sa1.
    f_n1_sa0 = next(f for f in flist.faults
                    if f.net == "n1" and f.sink is None and f.value == 0)
    assert rep_of[f_n1_sa0].net == "a"
    f_n2_sa0 = next(f for f in flist.faults
                    if f.net == "n2" and f.sink is None and f.value == 0)
    assert rep_of[f_n2_sa0].net == "a"
    assert rep_of[f_n2_sa0].value == 0  # double inversion


def test_detection_matches_reference(env):
    circuit, view, sim, fsim, flist = env
    rng = random.Random(5)
    targets = [f for f in flist.targets() if fsim.in_view(f)]
    sample = rng.sample(targets, min(60, len(targets)))
    for trial in range(3):
        assignment = {n: rng.getrandbits(1) for n in view.input_nets}
        words = {n: v for n, v in assignment.items()}
        good = sim.run(words)
        for fault in sample:
            got = bool(fsim.detect_word(good, fault) & 1)
            want = _reference_detects(view, assignment, fault)
            assert got == want, f"{fault} trial {trial}"


def test_run_block_drops_nothing_spurious(env):
    circuit, view, sim, fsim, flist = env
    rng = random.Random(11)
    words = sim.random_block(rng)
    targets = [f for f in flist.targets() if fsim.in_view(f)]
    detections = fsim.run_block(words, targets)
    assert detections
    # Every detection word is nonzero and within the block width.
    for fault, word in detections.items():
        assert 0 < word < (1 << sim.width)


def test_mark_propagates_to_class(env):
    _, _, _, _, flist = env
    classes = flist.classes()
    rep, members = next(
        (r, m) for r, m in classes.items()
        if len(m) > 1 and flist.status[r] is FaultStatus.UNDETECTED
    )
    flist.mark(rep, FaultStatus.DETECTED)
    assert all(flist.status[m] is FaultStatus.DETECTED for m in members)
    flist.mark(rep, FaultStatus.UNDETECTED)  # restore shared fixture


def test_coverage_metrics(env):
    _, _, _, _, flist = env
    fc = flist.fault_coverage
    fe = flist.fault_efficiency
    assert 0 < fc <= 1 and fc <= fe <= 1
