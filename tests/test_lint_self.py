"""Tests for the determinism self-lint (AST rules over the sources)."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint.core import Baseline
from repro.lint.self import default_baseline_path, main as self_main
from repro.lint.selfrules import (
    default_source_root,
    lint_sources,
)

SRC = Path(__file__).resolve().parent.parent / "src"


def _lint_snippet(tmp_path, code, name="mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return lint_sources(tmp_path)


def _ids(report):
    return [d.rule_id for d in report.diagnostics]


# ---------------------------------------------------------------------------
# One fixture source per rule


def test_self001_flags_set_iteration(tmp_path):
    report = _lint_snippet(tmp_path, """\
        def f(items):
            for item in set(items):
                print(item)
            return [x for x in {1, 2, 3}]
    """)
    assert _ids(report).count("SELF001") == 2
    assert report.diagnostics[0].file == "mod.py"
    assert report.diagnostics[0].snippet


def test_self001_allows_sorted_and_fromkeys(tmp_path):
    report = _lint_snippet(tmp_path, """\
        def f(items):
            for item in sorted(set(items)):
                print(item)
            for item in dict.fromkeys(items):
                print(item)
    """)
    assert "SELF001" not in _ids(report)


def test_self002_flags_global_rng_allows_seeded(tmp_path):
    report = _lint_snippet(tmp_path, """\
        import random

        def f(seed):
            rng = random.Random(seed)
            return rng.random() + random.random()
    """)
    assert _ids(report).count("SELF002") == 1
    msg = next(d for d in report.diagnostics if d.rule_id == "SELF002")
    assert "random.random()" in msg.message


def test_self003_flags_wallclock_outside_allowlist(tmp_path):
    code = """\
        import time
        import datetime

        def f():
            return time.time(), datetime.datetime.now()
    """
    flagged = _lint_snippet(tmp_path / "a", code, name="core/stage.py")
    assert _ids(flagged).count("SELF003") == 2
    # The observability layer is allowed to timestamp by design.
    allowed = _lint_snippet(tmp_path / "b", code, name="obs/tracer.py")
    assert "SELF003" not in _ids(allowed)


def test_self004_flags_mutable_defaults(tmp_path):
    report = _lint_snippet(tmp_path, """\
        def f(a, cache={}, *, log=[]):
            return a

        def g(a, cache=None):
            return a
    """)
    assert _ids(report).count("SELF004") == 2


def test_self005_flags_list_over_set(tmp_path):
    report = _lint_snippet(tmp_path, """\
        def f(items):
            frozen = list({i for i in items})
            ordered = sorted(set(items))
            return frozen, ordered
    """)
    assert _ids(report).count("SELF005") == 1


def test_self006_flags_impure_cache_key(tmp_path):
    report = _lint_snippet(tmp_path, """\
        import time

        def flow_cache_key(config):
            return (id(config), time.time())

        def unrelated():
            return time.time()
    """)
    ids = _ids(report)
    # id() and the time reference, both inside the cache-key function.
    assert ids.count("SELF006") == 2
    assert all(d.severity == "error" for d in report.diagnostics
               if d.rule_id == "SELF006")


def test_inline_suppression_comment(tmp_path):
    report = _lint_snippet(tmp_path, """\
        def f(items):
            for item in set(items):  # lint: disable=SELF001
                print(item)
    """)
    assert "SELF001" not in _ids(report)


def test_unparseable_source_is_an_error(tmp_path):
    (tmp_path / "bad.py").write_text("def broken(:\n")
    with pytest.raises(SyntaxError):
        lint_sources(tmp_path)


# ---------------------------------------------------------------------------
# The real tree


def test_repro_sources_pass_with_committed_baseline():
    report = lint_sources(default_source_root())
    baseline = Baseline.load(default_baseline_path())
    report.apply_baseline(baseline)
    assert report.diagnostics == [], report.format_text()


def test_baseline_entries_still_exist():
    """Fixed findings must leave the baseline (it only shrinks)."""
    report = lint_sources(default_source_root())
    fresh = {d.fingerprint for d in report.diagnostics}
    baseline = Baseline.load(default_baseline_path())
    stale = set(baseline.entries) - fresh
    assert not stale, (
        "baseline entries no longer matched by any finding; re-run "
        "python -m repro.lint.self --update-baseline: "
        + ", ".join(baseline.entries[fp]["location"] for fp in stale)
    )


def test_levelize_is_clean_of_set_iteration():
    """Regression: the historical levelize set-order bug stays fixed."""
    target = default_source_root() / "netlist" / "levelize.py"
    report = lint_sources(default_source_root(), files=[target])
    assert "SELF001" not in _ids(report)
    assert "SELF005" not in _ids(report)


# ---------------------------------------------------------------------------
# The CI entry point (python -m repro.lint.self)


def test_self_main_gates_and_writes_json(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "dirty.py").write_text("def f(x):\n    return list(set(x))\n")
    baseline = tmp_path / "baseline.json"
    out = tmp_path / "report.json"

    code = self_main(["--src", str(src), "--baseline", str(baseline),
                      "--json", str(out)])
    assert code == 4
    assert "SELF005" in capsys.readouterr().out
    assert json.loads(out.read_text())["summary"]["ok"] is False

    # Baselining the finding turns the gate green...
    assert self_main(["--src", str(src), "--baseline", str(baseline),
                      "--update-baseline"]) == 0
    assert self_main(["--src", str(src),
                      "--baseline", str(baseline)]) == 0
    capsys.readouterr()

    # ...but a *new* finding still fails.
    (src / "dirty.py").write_text(
        "def f(x):\n    return list(set(x))\n\n"
        "def g(x):\n    return tuple(set(x))\n"
    )
    assert self_main(["--src", str(src),
                      "--baseline", str(baseline)]) == 4
    assert "1 new finding(s)" in capsys.readouterr().out


def test_self_main_runs_as_module():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint.self"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "self-lint OK" in proc.stdout


def test_self_main_rejects_unknown_pack(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    (src / "ok.py").write_text("x = 1\n")
    with pytest.raises(SystemExit) as exc:
        self_main(["--src", str(src), "--packs", "self,nosuch"])
    assert exc.value.code == 2
    capsys.readouterr()


# ---------------------------------------------------------------------------
# Suppression lists and SELF007 (directive hygiene)


def test_disable_accepts_comma_separated_rule_list(tmp_path):
    report = _lint_snippet(tmp_path, """\
        def f(x):
            return list({i for i in set(x)})  # lint: disable=SELF001,SELF005
    """)
    assert "SELF001" not in _ids(report)
    assert "SELF005" not in _ids(report)


def test_disable_list_only_suppresses_named_rules(tmp_path):
    report = _lint_snippet(tmp_path, """\
        def f(x):
            return list({i for i in set(x)})  # lint: disable=SELF001
    """)
    assert "SELF001" not in _ids(report)
    assert "SELF005" in _ids(report)


def test_self007_flags_unknown_rule_in_disable(tmp_path):
    report = _lint_snippet(tmp_path, """\
        def f(x):
            return x  # lint: disable=SELF001,NOPE999
    """)
    findings = [d for d in report.diagnostics if d.rule_id == "SELF007"]
    assert len(findings) == 1
    assert "NOPE999" in findings[0].message


def test_self007_flags_unknown_directive_key(tmp_path):
    report = _lint_snippet(tmp_path, """\
        x = 1  # lint: sharred-under=_lock
    """)
    findings = [d for d in report.diagnostics if d.rule_id == "SELF007"]
    assert len(findings) == 1
    assert "sharred-under" in findings[0].message


def test_self007_ignores_directives_in_docstrings(tmp_path):
    report = _lint_snippet(tmp_path, '''\
        def f():
            """Write "# lint: disable=NOPE999" to suppress a rule."""
            return 1
    ''')
    assert "SELF007" not in _ids(report)


# ---------------------------------------------------------------------------
# Report schema and baseline staleness


def test_report_json_schema_is_versioned(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "dirty.py").write_text("def f(x):\n    return list(set(x))\n")
    out = tmp_path / "report.json"
    code = self_main(["--src", str(src),
                      "--baseline", str(tmp_path / "baseline.json"),
                      "--json", str(out)])
    assert code == 4
    payload = json.loads(out.read_text())
    assert payload["schema"] == 2
    assert "stale_baseline" in payload


def test_stale_baseline_entries_are_reported_not_fatal(tmp_path, capsys):
    src = tmp_path / "src"
    src.mkdir()
    doomed = src / "doomed.py"
    doomed.write_text("def f(x):\n    return list(set(x))\n")
    baseline = tmp_path / "baseline.json"
    assert self_main(["--src", str(src), "--baseline", str(baseline),
                      "--update-baseline"]) == 0
    capsys.readouterr()

    # The flagged file disappears: its baseline entry goes stale, the
    # gate stays green, and the staleness is reported.
    doomed.unlink()
    (src / "clean.py").write_text("x = 1\n")
    out = tmp_path / "report.json"
    assert self_main(["--src", str(src), "--baseline", str(baseline),
                      "--json", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "stale baseline entry" in printed
    assert "doomed.py" in printed
    assert "1 stale" in printed
    assert json.loads(out.read_text())["stale_baseline"]

    # --update-baseline prunes the stale entry.
    assert self_main(["--src", str(src), "--baseline", str(baseline),
                      "--update-baseline"]) == 0
    capsys.readouterr()
    assert json.loads(baseline.read_text())["entries"] == {}
