"""Chaos soak: the sweep daemon under scripted faults.

The daemon boots for real (ephemeral port) and jobs carry
:class:`repro.chaos.FaultPlan` scripts — worker kills, hangs, torn
cache writes — or inherit one from the ``REPRO_CHAOS`` environment,
exactly as a soak rig would run it.  The properties under test:

* the queue always drains (every job reaches a terminal state, no
  wedged workers);
* permanently failed cells surface as structured failures in the
  job's report and in ``/metrics`` — never as a dead daemon;
* jobs sharing the daemon with a chaos victim are unaffected;
* a torn cache write is quarantined and recomputed on resubmission;
* kill/hang plans that would take the daemon itself down (``jobs=1``
  runs the cell inline in the worker thread) are rejected at submit.

Scale and ATPG knobs are the reduced chaos-suite ones — full flow
semantics, seconds not minutes.
"""

from __future__ import annotations

import pytest

from repro.chaos import ENV_VAR, FaultPlan, FaultSpec
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
    SweepRequest,
)

#: Cheap-but-real ATPG settings, matching tests/test_chaos.py.
ATPG = {"seed": 7, "backtrack_limit": 24, "max_deterministic": 60,
        "abort_recovery_blocks": 4, "second_chance_factor": 1}
SCALE = 0.008
OPTIONS = {"atpg": ATPG}


@pytest.fixture()
def daemon(tmp_path):
    with ServiceThread(ServiceConfig(port=0,
                                     cache_dir=str(tmp_path / "svc"),
                                     job_workers=2)) as thread:
        yield thread


@pytest.fixture()
def client(daemon):
    return ServiceClient(daemon.base_url, timeout_s=10.0)


def request(tp_percents, chaos=None, jobs=2, retries=0, **kwargs):
    return SweepRequest(circuit="s38417", scale=SCALE,
                        tp_percents=tp_percents, options=OPTIONS,
                        jobs=jobs, retries=retries, chaos=chaos,
                        **kwargs)


def kill_plan(tp_percent, times=-1):
    return FaultPlan(faults=(
        FaultSpec(kind="kill", circuit="s38417", tp_percent=tp_percent,
                  stage="tpi_scan", times=times),
    ))


# ----------------------------------------------------------------------
# Kill faults: structured holes, healthy neighbours, drained queue
# ----------------------------------------------------------------------
def test_persistent_kill_degrades_job_but_not_daemon(client):
    """A permanently crashing cell becomes a report hole; the healthy
    job sharing the daemon, and the daemon itself, sail through."""
    victim = client.submit(request((0.0, 1.0, 2.0),
                                   chaos=kill_plan(1.0)))
    healthy = client.submit(request((0.5, 1.5), chaos=None))

    final_victim = client.wait(victim.id, timeout_s=300)
    final_healthy = client.wait(healthy.id, timeout_s=300)

    # The chaos job finished (terminal, not wedged) and carries its
    # failure as data: a structured hole, not a dead daemon.
    assert final_victim["state"] == "done"
    report = client.result(victim.id)
    (failure,) = report.failures
    assert failure.error_type == "WorkerCrashError"
    assert (failure.name, failure.tp_percent) == ("s38417", 1.0)
    assert report.worker_crashes >= 1
    assert len(report.results["s38417"].runs) == 2  # bystander cells

    # The innocent neighbour is untouched.
    assert final_healthy["state"] == "done"
    assert not client.result(healthy.id).failures

    # The queue drained and the daemon still answers.
    metrics = client.metrics()
    assert metrics["queue_depth"] == 0
    assert metrics["running_jobs"] == 0
    assert metrics["cells_failed"] >= 1
    assert metrics["worker_crashes"] >= 1
    assert client.healthz()["status"] == "ok"


def test_transient_kill_recovers_via_retry(client):
    record = client.submit(request((0.0, 1.0),
                                   chaos=kill_plan(1.0, times=1),
                                   retries=1))
    final = client.wait(record.id, timeout_s=300)
    assert final["state"] == "done"
    report = client.result(record.id)
    assert not report.failures
    assert report.worker_crashes >= 1
    assert len(report.results["s38417"].runs) == 2
    assert client.metrics()["retries"] >= 1


# ----------------------------------------------------------------------
# Hang fault: the watchdog rescues the worker
# ----------------------------------------------------------------------
def test_hung_worker_is_timed_out_and_retried(client):
    plan = FaultPlan(faults=(
        FaultSpec(kind="hang", circuit="s38417", tp_percent=1.0,
                  stage="tpi_scan", times=1, seconds=60.0),
    ))
    record = client.submit(request((0.0, 1.0), chaos=plan, retries=1,
                                   task_timeout_s=2.0))
    final = client.wait(record.id, timeout_s=300)
    assert final["state"] == "done"
    report = client.result(record.id)
    assert not report.failures
    assert report.timeouts >= 1
    assert client.metrics()["timeouts"] >= 1


# ----------------------------------------------------------------------
# Torn cache writes: quarantine + recompute on resubmission
# ----------------------------------------------------------------------
def test_corrupt_cache_entry_recomputed_on_resubmission(client):
    plan = FaultPlan(faults=(
        FaultSpec(kind="corrupt_cache", circuit="s38417",
                  tp_percent=1.0),
    ))
    first = client.submit(request((0.0, 1.0), chaos=plan, jobs=1))
    assert client.wait(first.id, timeout_s=300)["state"] == "done"
    assert not client.result(first.id).failures  # corruption is
    # post-write: the first run itself is healthy.

    # Same sweep, no chaos: the torn entry must be quarantined and
    # recomputed, the clean one served from the shared cache.
    second = client.submit(request((0.0, 1.0), chaos=None, jobs=1))
    assert client.wait(second.id, timeout_s=300)["state"] == "done"
    report = client.result(second.id)
    assert not report.failures
    runs = report.results["s38417"].runs
    assert runs[0.0].from_cache
    assert not runs[1.0].from_cache
    assert client.metrics()["cache_hits"] >= 1


# ----------------------------------------------------------------------
# Daemon-safety guard for inline kill/hang plans
# ----------------------------------------------------------------------
def test_inline_kill_plan_is_rejected_at_submit(client):
    with pytest.raises(ServiceError) as err:
        client.submit(request((0.0,), chaos=kill_plan(0.0), jobs=1))
    assert err.value.status == 400
    assert "jobs > 1" in str(err.value)


def test_env_chaos_plan_guards_inline_jobs(tmp_path, monkeypatch):
    import json

    plan = kill_plan(0.0)
    monkeypatch.setenv(ENV_VAR, json.dumps(plan.to_dict()))
    config = ServiceConfig(port=0, cache_dir=str(tmp_path / "env"),
                           job_workers=1)
    with ServiceThread(config) as thread:
        client = ServiceClient(thread.base_url, timeout_s=10.0)
        # jobs=1 would run the kill inline in the daemon: rejected.
        with pytest.raises(ServiceError) as err:
            client.submit(request((0.0,), jobs=1))
        assert err.value.status == 400
        # jobs=2 sandboxes the fault in a worker process: accepted,
        # and the ambient plan really fires.
        record = client.submit(request((0.0, 1.0), jobs=2))
        final = client.wait(record.id, timeout_s=300)
        assert final["state"] == "done"
        report = client.result(record.id)
        assert report.worker_crashes >= 1
        (failure,) = report.failures
        assert failure.tp_percent == 0.0
