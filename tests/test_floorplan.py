"""Tests for floorplanning (rows, rings, pads, utilisation sizing)."""

import math

import pytest

from repro.layout import (
    CORE_MARGIN_UM,
    GROUND_RING_UM,
    IO_RING_UM,
    POWER_RING_UM,
    build_floorplan,
)
from repro.library import ROW_HEIGHT_UM


def test_core_sized_for_utilization(lib, small_circuit):
    plan = build_floorplan(small_circuit, target_utilization=0.97)
    cell_area = sum(
        i.cell.area_um2 for i in small_circuit.instances.values()
    )
    achieved = cell_area / plan.core_area_um2
    assert 0.90 <= achieved <= 0.99


def test_lower_utilization_grows_core(lib, small_circuit):
    tight = build_floorplan(small_circuit, 0.97)
    loose = build_floorplan(small_circuit, 0.50)
    assert loose.core_area_um2 > 1.8 * tight.core_area_um2
    assert loose.chip_area_um2 > tight.chip_area_um2


def test_chip_is_square_and_encloses_core(lib, small_circuit):
    plan = build_floorplan(small_circuit, 0.97)
    assert plan.chip.width == pytest.approx(plan.chip.height)
    ring = CORE_MARGIN_UM + GROUND_RING_UM + POWER_RING_UM + IO_RING_UM
    assert plan.core.x0 == pytest.approx(ring)
    assert plan.core.x1 <= plan.chip.x1 - ring + 1e-6
    assert 0.9 <= plan.aspect_ratio <= 1.1  # paper Section 4.3


def test_rows_abut_and_alternate(lib, small_circuit):
    plan = build_floorplan(small_circuit, 0.97)
    for a, b in zip(plan.rows, plan.rows[1:]):
        assert b.y == pytest.approx(a.y + ROW_HEIGHT_UM)
        assert a.flipped != b.flipped
    assert plan.total_row_length_um == pytest.approx(
        sum(r.length_um for r in plan.rows)
    )


def test_pads_on_io_ring(lib, small_circuit):
    plan = build_floorplan(small_circuit, 0.97)
    ports = set(small_circuit.inputs) | set(small_circuit.outputs)
    assert set(plan.pad_positions) == ports
    side = plan.chip.width
    inner = IO_RING_UM / 2
    for pos in plan.pad_positions.values():
        x, y = pos
        on_edge = (
            abs(x - inner) < 1e-6 or abs(x - (side - inner)) < 1e-6
            or abs(y - inner) < 1e-6 or abs(y - (side - inner)) < 1e-6
        )
        assert on_edge, pos


def test_bad_utilization_rejected(lib, small_circuit):
    with pytest.raises(ValueError):
        build_floorplan(small_circuit, 1.5)
    with pytest.raises(ValueError):
        build_floorplan(small_circuit, 0.0)
