"""Integration tests for the ATPG engine (compaction, recovery,
coverage)."""

import pytest

from repro.atpg import (
    AtpgConfig,
    BitSimulator,
    FaultSimulator,
    FaultStatus,
    build_fault_list,
    run_atpg,
)
from repro.atpg.compaction import pack_block, reverse_order_compaction
from repro.netlist import extract_comb_view
from repro.scan import insert_scan


@pytest.fixture(scope="module")
def atpg_result():
    from repro.circuits import s38417_like
    from repro.library import cmos130
    c = s38417_like(scale=0.025)
    insert_scan(c, cmos130(), max_chain_length=50)
    config = AtpgConfig(seed=11, backtrack_limit=48)
    return c, run_atpg(c, config=config)


def test_reasonable_coverage(atpg_result):
    _, res = atpg_result
    assert res.fault_coverage > 0.87
    assert res.fault_efficiency >= res.fault_coverage
    assert res.n_patterns > 10


def test_final_set_covers_all_detected_faults(atpg_result):
    """Re-simulating the final test set re-detects every DETECTED fault."""
    c, res = atpg_result
    view = extract_comb_view(c, "test")
    sim = BitSimulator(view)
    fsim = FaultSimulator(sim)
    flist = res.fault_list
    must_detect = {
        rep for rep in flist.classes()
        if flist.status[rep] is FaultStatus.DETECTED
        and fsim.in_view(rep)
    }
    remaining = set(must_detect)
    width = sim.width
    for start in range(0, len(res.patterns), width):
        block = res.patterns[start:start + width]
        words = pack_block(res.input_nets, block)
        remaining -= set(fsim.run_block(words, remaining))
        if not remaining:
            break
    assert not remaining, f"{len(remaining)} detected faults not covered"


def test_static_compaction_preserves_coverage(atpg_result):
    c, res = atpg_result
    view = extract_comb_view(c, "test")
    fsim = FaultSimulator(BitSimulator(view))
    flist = res.fault_list
    targets = [
        rep for rep in flist.classes()
        if flist.status[rep] is FaultStatus.DETECTED
    ]
    compacted = reverse_order_compaction(fsim, list(res.patterns), targets)
    assert len(compacted) <= len(res.patterns)
    # Idempotent-ish: compacting again cannot grow the set.
    again = reverse_order_compaction(fsim, compacted, targets)
    assert len(again) <= len(compacted)


def test_deterministic_runs(atpg_result):
    from repro.circuits import s38417_like
    from repro.library import cmos130
    results = []
    for _ in range(2):
        c = s38417_like(scale=0.015)
        insert_scan(c, cmos130(), max_chain_length=50)
        res = run_atpg(c, config=AtpgConfig(
            seed=5, backtrack_limit=24, max_deterministic=120,
        ))
        results.append((res.n_patterns, res.fault_coverage, res.patterns))
    assert results[0] == results[1]


def test_random_phase_mode():
    """The opt-in LBIST-style random phase also reaches good coverage."""
    from repro.circuits import s38417_like
    from repro.library import cmos130
    c = s38417_like(scale=0.02)
    insert_scan(c, cmos130(), max_chain_length=50)
    res = run_atpg(c, config=AtpgConfig(
        seed=2, random_blocks=48, backtrack_limit=24,
        max_deterministic=100,
    ))
    assert res.random_patterns_kept > 0
    assert res.fault_coverage > 0.75


def test_scan_path_faults_pre_credited(atpg_result):
    c, res = atpg_result
    flist = res.fault_list
    assert flist.count(FaultStatus.SCAN_TESTED) > 0
    # TE/TI/CLK pin faults never stay UNDETECTED.
    for fault in flist.faults:
        if fault.sink is None:
            continue
        inst, pin = fault.sink
        if pin in ("TE", "TI", "CLK") and inst in c.instances:
            if c.instances[inst].is_sequential:
                assert flist.status[fault] is not FaultStatus.UNDETECTED
