"""Tests for the LBIST substrate (LFSR, MISR, engine)."""

import pytest

from repro.lbist import (
    LFSR,
    LbistConfig,
    MISR,
    PRIMITIVE_TAPS,
    coverage_at,
    run_lbist,
    signature_of,
)
from repro.scan import insert_scan
from repro.tpi import TpiConfig, insert_test_points


@pytest.mark.parametrize("width", sorted(PRIMITIVE_TAPS))
def test_lfsr_period_is_maximal_for_small_widths(width):
    if width > 16:
        pytest.skip("full-period check only for small registers")
    lfsr = LFSR(width=width, seed=1)
    start = lfsr.state
    period = 0
    while True:
        lfsr.step()
        period += 1
        if lfsr.state == start:
            break
        assert period <= (1 << width)
    assert period == (1 << width) - 1


def test_lfsr_never_reaches_zero_state():
    lfsr = LFSR(width=8, seed=3)
    for _ in range(1 << 9):
        lfsr.step()
        assert lfsr.state != 0


def test_lfsr_patterns_deterministic():
    a = LFSR(width=32, seed=99).patterns(20, 10)
    b = LFSR(width=32, seed=99).patterns(20, 10)
    assert a == b
    c = LFSR(width=32, seed=100).patterns(20, 10)
    assert a != c


def test_lfsr_rejects_unknown_width():
    with pytest.raises(ValueError):
        LFSR(width=13)


def test_misr_distinguishes_streams():
    base = [0x1234, 0x5678, 0x9ABC, 0xDEF0]
    sig = signature_of(base, width=32)
    flipped = list(base)
    flipped[2] ^= 1  # single-bit response error
    assert signature_of(flipped, width=32) != sig
    # Order matters too (time compaction).
    assert signature_of(list(reversed(base)), width=32) != sig


def test_misr_aliasing_probability():
    assert MISR(width=32).aliasing_probability == pytest.approx(2.0 ** -32)


def test_lbist_session_and_curve(lib, small_circuit_mutable):
    c = small_circuit_mutable
    insert_scan(c, lib, max_chain_length=50)
    res = run_lbist(c, LbistConfig(n_patterns=512))
    assert res.n_patterns == 512
    assert 0.4 < res.fault_coverage < 1.0
    # Coverage is monotone along the curve.
    coverages = [cov for _, cov in res.coverage_curve]
    assert coverages == sorted(coverages)
    assert coverage_at(res, 512) == pytest.approx(res.fault_coverage)
    assert res.signature != 0


def test_lbist_deterministic(lib):
    from repro.circuits import s38417_like

    def session():
        c = s38417_like(scale=0.02)
        insert_scan(c, cmos := lib, max_chain_length=50)
        res = run_lbist(c, LbistConfig(n_patterns=256))
        return res.signature, res.fault_coverage

    assert session() == session()


def test_test_points_lift_lbist_coverage(lib):
    """The paper's Section 2 motivation, measured."""
    from repro.circuits import s38417_like

    def coverage(tp_percent):
        c = s38417_like(scale=0.03)
        if tp_percent:
            insert_test_points(c, lib, TpiConfig(
                n_test_points=round(tp_percent / 100 * c.num_flip_flops)
            ))
        insert_scan(c, lib, max_chain_length=50)
        return run_lbist(c, LbistConfig(n_patterns=1024)).fault_coverage

    base = coverage(0)
    with_tps = coverage(3)
    assert with_tps > base + 0.02
