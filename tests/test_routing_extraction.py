"""Tests for the global router and the RC extractor."""

import pytest

from repro.extraction import NetParasitics, extract_all, extract_net
from repro.extraction.rc import OHM_FF_TO_PS
from repro.layout import GlobalRouter, RoutedNet, RouteSegment, build_floorplan, global_place
from repro.layout.geometry import hpwl
from repro.library.layers import metal_stack_130nm


@pytest.fixture(scope="module")
def routed_env():
    from repro.circuits import s38417_like
    c = s38417_like(scale=0.03)
    plan = build_floorplan(c, 0.97)
    placement = global_place(c, plan)
    router = GlobalRouter(c, placement)
    report = router.route_all()
    return c, plan, placement, router, report


def test_every_multi_pin_net_routed(routed_env):
    c, plan, placement, router, report = routed_env
    for name, net in c.nets.items():
        pins = router._pin_points(name)
        routed = router.routed[name]
        if len(pins) >= 2 and hpwl(pins) > 1e-9:
            assert routed.segments, f"net {name} unrouted"


def test_segments_rectilinear_and_lengths_consistent(routed_env):
    c, plan, placement, router, report = routed_env
    for routed in router.routed.values():
        total = 0.0
        for seg in routed.segments:
            assert seg.x0 == seg.x1 or seg.y0 == seg.y1
            assert 2 <= seg.layer <= 5
            total += seg.length_um
        assert routed.wirelength_um == pytest.approx(total)


def test_wirelength_at_least_hpwl(routed_env):
    c, plan, placement, router, report = routed_env
    for name, routed in router.routed.items():
        pins = router._pin_points(name)
        if len(pins) >= 2:
            assert routed.wirelength_um >= hpwl(pins) - 1e-6


def test_congestion_report(routed_env):
    _, _, _, router, report = routed_env
    assert report.total_wirelength_um > 0
    assert 0 <= report.mean_utilization <= report.max_utilization
    assert report.overflowed_edges >= 0


def test_low_utilization_routes_with_less_congestion():
    from repro.circuits import s38417_like
    results = {}
    for util in (0.97, 0.50):
        c = s38417_like(scale=0.03)
        plan = build_floorplan(c, util)
        placement = global_place(c, plan)
        report = GlobalRouter(c, placement).route_all()
        results[util] = report
    assert (
        results[0.50].max_utilization <= results[0.97].max_utilization
    )


def test_extract_two_pin_elmore_hand_check(lib):
    """One 100 um M3 segment between driver and a single sink."""
    from repro.netlist import Circuit
    from repro.layout.placement import Placement
    from repro.layout.floorplan import build_floorplan

    c = Circuit("t")
    c.add_input("a")
    c.add_net("n1")
    c.add_net("n2")
    c.add_instance("d", lib["INV_X1"], {"A": "a", "Z": "n1"})
    c.add_instance("s", lib["INV_X1"], {"A": "n1", "Z": "n2"})
    c.add_output("po", "n2")
    plan = build_floorplan(c, 0.5)
    placement = Placement(plan=plan)
    placement.positions = {"d": (0.0, 0.0), "s": (100.0, 0.0)}
    routed = RoutedNet(net="n1", segments=[
        RouteSegment(0.0, 0.0, 100.0, 0.0, 3)
    ], wirelength_um=100.0)
    stack = metal_stack_130nm()
    layers = {l.index: l for l in stack}
    m3 = layers[3]
    p = extract_net(c, placement, routed, layers)
    wire_c = 100.0 * m3.c_ff_per_um
    assert p.wire_cap_ff == pytest.approx(wire_c)
    pin_c = lib["INV_X1"].pin_cap_ff("A")
    assert p.pin_cap_ff == pytest.approx(pin_c)
    assert p.total_cap_ff == pytest.approx(wire_c + pin_c)
    from repro.library.layers import VIA_RESISTANCE_OHM
    r = 100.0 * m3.r_ohm_per_um + VIA_RESISTANCE_OHM
    expected = r * (wire_c / 2 + pin_c) * OHM_FF_TO_PS
    assert p.delay_to(("s", "A")) == pytest.approx(expected)


def test_extract_all_covers_every_net(routed_env):
    c, plan, placement, router, _ = routed_env
    parasitics = extract_all(c, placement, router.routed)
    assert set(parasitics) == set(c.nets)
    for name, p in parasitics.items():
        assert p.total_cap_ff >= 0
        for sink, d in p.elmore_ps.items():
            assert d >= 0
    # Sinks of routed nets all get an Elmore entry.
    for name, net in c.nets.items():
        if router.routed[name].segments:
            p = parasitics[name]
            placed_sinks = [
                s for s in net.sinks
                if s[0] == "@port" or s[0] in placement.positions
            ]
            assert len(p.elmore_ps) == len(placed_sinks)
