"""Tests for the PODEM test generator."""

import random

import pytest

from repro.atpg import (
    BitSimulator,
    Fault,
    FaultSimulator,
    PodemEngine,
    build_fault_list,
)
from repro.atpg.compaction import pack_block
from repro.netlist import Circuit, extract_comb_view


@pytest.fixture(scope="module")
def env():
    from repro.circuits import s38417_like
    c = s38417_like(scale=0.02)
    view = extract_comb_view(c, "test")
    sim = BitSimulator(view)
    return c, view, sim, FaultSimulator(sim), build_fault_list(c, view)


def _cube_to_pattern(view, cube, rng):
    inputs = list(view.input_nets)
    idx = {n: j for j, n in enumerate(inputs)}
    pattern = rng.getrandbits(len(inputs))
    for net, value in cube.assignment.items():
        j = idx[net]
        if value:
            pattern |= 1 << j
        else:
            pattern &= ~(1 << j)
    return pattern


def test_cubes_always_detect_their_target(env):
    circuit, view, sim, fsim, flist = env
    podem = PodemEngine(view, backtrack_limit=96)
    rng = random.Random(1)
    targets = [f for f in flist.targets() if fsim.in_view(f)]
    checked = 0
    for fault in rng.sample(targets, min(80, len(targets))):
        cube = podem.generate(fault)
        if cube.status != "detected":
            continue
        checked += 1
        # Detection must survive ANY fill: try three random fills.
        for _ in range(3):
            pattern = _cube_to_pattern(view, cube, rng)
            words = pack_block(view.input_nets, [pattern])
            assert fault in fsim.run_block(words, [fault]), str(fault)
    assert checked >= 50


def test_redundant_fault_proven(lib):
    """a AND (NOT a) == 0: the output sa0 is untestable."""
    c = Circuit("redundant")
    c.add_input("a")
    c.add_input("b")
    c.add_net("na")
    c.add_net("dead")
    c.add_net("out")
    c.add_instance("i", lib["INV_X1"], {"A": "a", "Z": "na"})
    c.add_instance("g", lib["AND2_X1"], {"A": "a", "B": "na", "Z": "dead"})
    c.add_instance("o", lib["OR2_X1"], {"A": "dead", "B": "b", "Z": "out"})
    c.add_output("po", "out")
    view = extract_comb_view(c, "test")
    podem = PodemEngine(view, backtrack_limit=64)
    cube = podem.generate(Fault("dead", None, 0))
    assert cube.status == "redundant"
    # The sa1 counterpart is testable: a=0, b=0 observes it.
    cube1 = podem.generate(Fault("dead", None, 1))
    assert cube1.status == "detected"


def test_fixed_constraints_respected(env):
    circuit, view, sim, fsim, flist = env
    podem = PodemEngine(view, backtrack_limit=96)
    rng = random.Random(2)
    targets = [f for f in flist.targets() if fsim.in_view(f)]
    done = 0
    for fault in targets:
        base = podem.generate(fault)
        if base.status != "detected" or not base.assignment:
            continue
        # Re-generate with the cube itself as constraints: the result
        # must not contradict them.
        again = podem.generate(fault, fixed=base.assignment)
        if again.status == "detected":
            for net, value in again.assignment.items():
                assert base.assignment.get(net, value) == value
        done += 1
        if done >= 15:
            break
    assert done == 15


def test_incompatible_status_under_conflicting_constraints(env):
    circuit, view, sim, fsim, flist = env
    podem = PodemEngine(view, backtrack_limit=48)
    targets = [f for f in flist.targets() if fsim.in_view(f)
               and f.sink is None]
    for fault in targets:
        cube = podem.generate(fault)
        if cube.status != "detected" or not cube.assignment:
            continue
        # Flip every cube bit: activation can become impossible.
        flipped = {n: 1 - v for n, v in cube.assignment.items()}
        result = podem.generate(fault, fixed=flipped)
        assert result.status in ("detected", "incompatible", "aborted")
        if result.status == "incompatible":
            return
    pytest.skip("no fault produced an incompatible constraint set")


def test_backtrack_budget_bounds_work(env):
    circuit, view, sim, fsim, flist = env
    podem = PodemEngine(view, backtrack_limit=1, restarts=1)
    targets = [f for f in flist.targets() if fsim.in_view(f)]
    statuses = {podem.generate(f).status for f in targets[:40]}
    assert statuses <= {"detected", "aborted", "redundant"}
