"""Tests for the compiled bit-parallel simulator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg import BitSimulator
from repro.atpg.compaction import pack_block
from repro.netlist import extract_comb_view


@pytest.fixture(scope="module")
def sim(small_circuit):
    view = extract_comb_view(small_circuit, "test")
    return BitSimulator(view, width=64)


# module-scope fixtures can't see session fixtures' args directly; use
# a tiny indirection.
@pytest.fixture(scope="module")
def small_circuit(request):
    from repro.circuits import s38417_like
    return s38417_like(scale=0.02)


def _reference_eval(view, assignment):
    """Interpreted reference simulation (single pattern)."""
    values = dict(assignment)
    for net, const in view.constants.items():
        values[net] = const
    for node in view.nodes:
        env = {
            pin: values[net] for pin, net in node.pin_nets.items()
        }
        values[node.out_net] = node.expr.eval2(env) & 1
    return values


def test_compiled_matches_interpreted(sim):
    rng = random.Random(42)
    view = sim.view
    for _ in range(5):
        assignment = {net: rng.getrandbits(1) for net in view.input_nets}
        ref = _reference_eval(view, assignment)
        got = sim.run({net: v for net, v in assignment.items()})
        for net in view.output_nets:
            assert got[sim.net_index[net]] & 1 == ref[net]


def test_block_simulates_patterns_independently(sim):
    """Bit i of the block equals a solo simulation of pattern i."""
    rng = random.Random(7)
    view = sim.view
    patterns = [
        {net: rng.getrandbits(1) for net in view.input_nets}
        for _ in range(8)
    ]
    words = sim.patterns_to_words([
        {net: p[net] for net in view.input_nets} for p in patterns
    ])
    block = sim.run(words)
    for i, pattern in enumerate(patterns):
        solo = sim.run({net: v << i for net, v in pattern.items()})
        for net in view.output_nets:
            idx = sim.net_index[net]
            assert (block[idx] >> i) & 1 == (solo[idx] >> i) & 1


def test_patterns_to_words_round_trip(sim):
    view = sim.view
    rng = random.Random(3)
    patterns = [
        {net: rng.getrandbits(1) for net in view.input_nets}
        for _ in range(5)
    ]
    words = sim.patterns_to_words(patterns)
    for i, pattern in enumerate(patterns):
        for net, value in pattern.items():
            assert (words[net] >> i) & 1 == value


def test_pack_block_matches_patterns_to_words(sim):
    inputs = list(sim.view.input_nets)
    rng = random.Random(9)
    ints = [rng.getrandbits(len(inputs)) for _ in range(6)]
    words = pack_block(inputs, ints)
    for i, p in enumerate(ints):
        for j, net in enumerate(inputs):
            assert (words[net] >> i) & 1 == (p >> j) & 1


def test_too_many_patterns_rejected(sim):
    with pytest.raises(ValueError):
        sim.patterns_to_words([{}] * (sim.width + 1))


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_constants_pin_their_values(sim, seed):
    rng = random.Random(seed)
    words = sim.random_block(rng)
    values = sim.run(words)
    for net, const in sim.view.constants.items():
        idx = sim.net_index[net]
        expected = sim.mask if const else 0
        assert values[idx] == expected
