"""Tests for the incremental ECO timing engine.

Covers the three layers of the tentpole — the :class:`Circuit` dirty
tracker, the scoped re-route / re-extract / re-STA primitives — and
the equivalence gate: with the same edits, the incremental path must
reproduce the full-recompute path's wirelength, hold slacks and
eq. (3) T_cp decomposition within float tolerance.
"""

from __future__ import annotations

import pytest

from repro.circuits import s38417_like
from repro.core import FlowConfig, HoldFixRound, run_flow
from repro.extraction import extract_all, extract_incremental
from repro.layout import GlobalRouter
from repro.library import cmos130
from repro.sta import StaConfig, run_sta, run_sta_incremental, \
    run_sta_with_state


# ----------------------------------------------------------------------
# Dirty-set tracker
# ----------------------------------------------------------------------
def test_mutators_mark_dirty(tiny_pipeline, lib):
    c = tiny_pipeline
    c.reset_dirty()
    assert c.dirty_nets == frozenset() and c.dirty_instances == frozenset()

    c.add_net("fresh")
    assert "fresh" in c.dirty_nets
    c.add_instance("g3", lib["INV_X1"], {"A": "q2", "Z": "fresh"})
    assert "g3" in c.dirty_instances

    nets, insts = c.reset_dirty()
    assert "fresh" in nets and "g3" in insts
    assert c.dirty_nets == frozenset()

    c.disconnect("g3", "A")
    assert "q2" in c.dirty_nets and "g3" in c.dirty_instances
    c.connect("g3", "A", "q1")
    assert "q1" in c.dirty_nets

    c.reset_dirty()
    c.swap_cell("g2", lib["INV_X2"])
    assert "g2" in c.dirty_instances
    assert {"q1", "n2"} <= set(c.dirty_nets)


def test_split_net_marks_moved_sink_dirty(tiny_pipeline):
    c = tiny_pipeline
    c.reset_dirty()
    new_net = c.split_net_before_sinks("n2", [("ff2", "D")], "hold")
    assert "n2" in c.dirty_nets
    assert new_net.name in c.dirty_nets
    assert "ff2" in c.dirty_instances


def test_clone_starts_clean(tiny_pipeline):
    c = tiny_pipeline
    c.add_net("scratch")
    assert c.clone().dirty_nets == frozenset()


# ----------------------------------------------------------------------
# Scoped primitives against their full-recompute references
# ----------------------------------------------------------------------
@pytest.fixture()
def laid_out():
    """A routed, extracted, timed layout plus its flow artifacts.

    Function-scoped: every test applies its own netlist edit, so the
    layout must start pristine each time.
    """
    circuit = s38417_like(scale=0.02)
    config = FlowConfig(tp_percent=0.0, run_atpg_phase=False,
                        fix_holds=False)
    return run_flow(circuit, cmos130(), config)


def _hold_fix_edit(result):
    """One hold-buffer-style edit; returns the dirty snapshot.

    The buffer is dropped at the endpoint's own position (the finished
    flow's fillers leave no ECO whitespace), which is all the router,
    extractor and STA need.
    """
    circuit = result.circuit
    circuit.reset_dirty()
    endpoint = next(
        name for name, inst in sorted(circuit.instances.items())
        if inst.cell.sequential is not None
        and not inst.cell.is_tsff
        and inst.conns.get(inst.cell.sequential.data_pin)
    )
    seq = circuit.instances[endpoint].cell.sequential
    d_net = circuit.instances[endpoint].conns[seq.data_pin]
    new_net = circuit.split_net_before_sinks(
        d_net, [(endpoint, seq.data_pin)], "hold"
    )
    buf = circuit.new_instance_name("holdbuf")
    circuit.add_instance(buf, cmos130().family("BUF")[0],
                         {"A": d_net, "Z": new_net.name})
    result.placement.positions[buf] = result.placement.positions[endpoint]
    return circuit.reset_dirty()


def test_reroute_matches_route_all(laid_out):
    result = laid_out
    dirty_nets, _ = _hold_fix_edit(result)

    incr = GlobalRouter(result.circuit, result.placement)
    incr.routed = dict(result.routed)
    # Rebuild the standing demand map from the pre-edit routes.
    for net in incr.routed.values():
        for seg in net.segments:
            incr._record(seg, +1.0)
    report_incr = incr.reroute(dirty_nets)

    full = GlobalRouter(result.circuit, result.placement)
    report_full = full.route_all()

    assert set(incr.routed) == set(full.routed)
    for name in full.routed:
        assert incr.routed[name].segments == full.routed[name].segments
    assert report_incr.total_wirelength_um == pytest.approx(
        report_full.total_wirelength_um, rel=1e-9
    )
    assert report_incr.overflowed_edges == report_full.overflowed_edges


def test_extract_incremental_reuses_clean_nets(laid_out):
    result = laid_out
    dirty_nets, _ = _hold_fix_edit(result)
    router = GlobalRouter(result.circuit, result.placement)
    router.route_all()

    full = extract_all(result.circuit, result.placement, router.routed)
    prior = extract_all(result.circuit, result.placement, router.routed)
    incr = extract_incremental(result.circuit, result.placement,
                               router.routed, prior, dirty_nets)

    assert set(incr) == set(full)
    for name, fresh in full.items():
        got = incr[name]
        if name not in dirty_nets:
            assert got is prior[name]  # reused, not recomputed
        assert got.wirelength_um == pytest.approx(fresh.wirelength_um)
        assert got.total_cap_ff == pytest.approx(fresh.total_cap_ff)
        assert got.elmore_ps.keys() == fresh.elmore_ps.keys()
        for sink, delay in fresh.elmore_ps.items():
            assert got.elmore_ps[sink] == pytest.approx(delay)


def test_run_sta_incremental_matches_full(laid_out):
    result = laid_out
    config = StaConfig()
    _, state = run_sta_with_state(result.circuit, result.parasitics,
                                  config)
    dirty_nets, dirty_insts = _hold_fix_edit(result)

    router = GlobalRouter(result.circuit, result.placement)
    router.route_all()
    parasitics = extract_all(result.circuit, result.placement,
                             router.routed)

    incr, state = run_sta_incremental(
        result.circuit, parasitics, state, dirty_nets, dirty_insts,
        config,
    )
    full = run_sta(result.circuit, parasitics, config)

    assert state.cone_size > 0
    assert set(incr.paths) == set(full.paths)
    for domain, paths in full.paths.items():
        got = incr.paths[domain]
        assert [p.endpoint for p in got] == [p.endpoint for p in paths]
        for g, f in zip(got, paths):
            assert g.total_ps == pytest.approx(f.total_ps, rel=1e-12)
            assert g.slack_ps == pytest.approx(f.slack_ps, rel=1e-12)
            assert g.t_wires_ps == pytest.approx(f.t_wires_ps)
            assert g.nets == f.nets
    assert incr.hold_slacks.keys() == full.hold_slacks.keys()
    for name, slack in full.hold_slacks.items():
        assert incr.hold_slacks[name] == pytest.approx(slack, rel=1e-12)
    assert incr.slow_nodes == full.slow_nodes


def test_incremental_cone_is_scoped(laid_out):
    """The re-propagated cone stays far below the full graph size."""
    from repro.sta import build_timing_nodes

    result = laid_out
    _, state = run_sta_with_state(result.circuit, result.parasitics)
    dirty_nets, dirty_insts = _hold_fix_edit(result)
    router = GlobalRouter(result.circuit, result.placement)
    router.route_all()
    parasitics = extract_all(result.circuit, result.placement,
                             router.routed)
    _, state = run_sta_incremental(result.circuit, parasitics, state,
                                   dirty_nets, dirty_insts)
    n_nodes = len(build_timing_nodes(result.circuit))
    assert 0 < state.cone_size < n_nodes / 2


# ----------------------------------------------------------------------
# Flow-level equivalence gate (the issue's acceptance test)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tp_percent", [0.0, 5.0])
def test_incremental_flow_equivalent_to_full(tp_percent):
    """Incremental and full ECO closure agree on every reported number.

    ``hold_margin_ps`` hardens the hold check so the loop runs more
    than one round, making the scoped path do real work.
    """
    def run_once(incremental: bool):
        circuit = s38417_like(scale=0.03)
        config = FlowConfig(
            tp_percent=tp_percent,
            run_atpg_phase=False,
            incremental_eco=incremental,
            hold_fix_iterations=6,
            sta=StaConfig(hold_margin_ps=80.0),
        )
        return run_flow(circuit, cmos130(), config)

    inc = run_once(True)
    full = run_once(False)

    assert inc.hold_fix_rounds == full.hold_fix_rounds
    assert len(inc.hold_fix_rounds) >= 1
    assert inc.congestion.total_wirelength_um == pytest.approx(
        full.congestion.total_wirelength_um, rel=1e-9
    )
    assert inc.sta.hold_violations == full.sta.hold_violations
    assert inc.sta.hold_slacks.keys() == full.sta.hold_slacks.keys()
    for name, slack in full.sta.hold_slacks.items():
        assert inc.sta.hold_slacks[name] == pytest.approx(slack,
                                                          rel=1e-9)
    assert set(inc.sta.paths) == set(full.sta.paths)
    for domain in full.sta.paths:
        a, b = inc.sta.critical(domain), full.sta.critical(domain)
        assert a.endpoint == b.endpoint
        assert a.total_ps == pytest.approx(b.total_ps, rel=1e-9)
        assert a.t_wires_ps == pytest.approx(b.t_wires_ps, rel=1e-9)
        assert a.t_skew_ps == pytest.approx(b.t_skew_ps, rel=1e-9)
    assert inc.sta.slow_nodes == full.sta.slow_nodes


# ----------------------------------------------------------------------
# Budget clamp regression (the issue's underflow fix)
# ----------------------------------------------------------------------
def test_hold_fix_budget_never_underflows(monkeypatch):
    """A budget-exhausting first endpoint stops the loop cleanly.

    Two deep violations against a 4-buffer budget: the worst endpoint
    may spend the whole budget (clamped to the remainder, never
    negative) and the second endpoint must see a clean break — no
    negative ``min()`` fold, no over-insertion.
    """
    from repro.core.flow import _fix_hold_violations
    from repro.layout import get_placer

    circuit = s38417_like(scale=0.02)
    library = cmos130()
    result = run_flow(circuit, library, FlowConfig(
        tp_percent=0.0, run_atpg_phase=False, fix_holds=False,
    ))
    placement = result.placement
    width = library.family("BUF")[0].width_sites
    # Report exactly 5 buffer-widths of whitespace (all in one row,
    # the finished flow's fillers having eaten the real gaps):
    # budget == 5 - 1 == 4.
    target = 5 * width
    assert placement.plan.rows[0].n_sites > target

    def scripted_occupancy(circuit):
        out = [row.n_sites for row in placement.plan.rows]
        out[0] -= target
        return out

    monkeypatch.setattr(placement, "row_occupancy_sites",
                        scripted_occupancy)
    endpoints = [
        name for name, inst in sorted(circuit.instances.items())
        if inst.cell.sequential is not None
        and inst.conns.get(inst.cell.sequential.data_pin)
    ][:2]
    assert len(endpoints) == 2
    before = len(circuit.instances)

    class _StubSta:
        hold_slacks = {endpoints[0]: -900.0, endpoints[1]: -800.0}

    fix = _fix_hold_violations(circuit, library, placement, _StubSta(),
                               get_placer("quadratic"))
    assert fix == HoldFixRound(
        round=1, violations_before=2, buffers_inserted=4,
        budget=4, budget_left=0,
    )
    assert len(circuit.instances) == before + 4
