"""Tests for combinational-view extraction and levelisation."""

import pytest

from repro.netlist import (
    Circuit,
    CombinationalLoopError,
    extract_comb_view,
)
from repro.scan import insert_scan
from repro.tpi import insert_test_points, TpiConfig


def test_test_view_cuts_flip_flops(lib, tiny_pipeline):
    view = extract_comb_view(tiny_pipeline, "test")
    # FF outputs become controllable, FF D pins observable.
    assert "q1" in view.input_nets and "q2" in view.input_nets
    endpoints = {ref for _, ref in view.output_refs}
    assert ("ff1", "D") in endpoints and ("ff2", "D") in endpoints
    # Two combinational nodes, levelised.
    assert [n.inst.name for n in view.nodes] in (
        [["g1", "g2"]][0], ["g2", "g1"]
    )


def test_topological_order_property(lib, small_circuit):
    view = extract_comb_view(small_circuit, "test")
    known = set(view.input_nets) | set(view.constants)
    for node in view.nodes:
        for net in node.pin_nets.values():
            assert net in known, f"{node.inst.name} used {net} early"
        known.add(node.out_net)


def test_levels_monotone(lib, small_circuit):
    view = extract_comb_view(small_circuit, "test")
    level_of = {net: 0 for net in view.input_nets}
    for net in view.constants:
        level_of.setdefault(net, 0)
    for node in view.nodes:
        expected = 1 + max(
            level_of[n] for n in node.pin_nets.values()
        )
        assert node.level == expected
        level_of[node.out_net] = node.level


def test_functional_view_makes_tsff_transparent(lib):
    c = Circuit("t")
    c.add_clock("clk", 1000.0)
    c.add_input("a")
    c.add_input("se")
    c.add_input("tr")
    c.add_net("q")
    c.add_instance("tp", lib["TSFF_X1"], {
        "D": "a", "TI": "a", "TE": "se", "TR": "tr", "CLK": "clk",
        "Q": "q",
    })
    c.add_output("y", "q")
    functional = extract_comb_view(c, "functional")
    # In application mode the TSFF is a pass-through node.
    assert any(n.inst.name == "tp" for n in functional.nodes)
    test = extract_comb_view(c, "test")
    # In capture mode it is a register boundary instead.
    assert all(n.inst.name != "tp" for n in test.nodes)
    assert "q" in test.input_nets
    # TR is held 1 in capture, 0 in application mode.
    assert test.constants["tr"] == 1
    assert functional.constants["tr"] == 0


def test_unknown_mode_rejected(lib, tiny_pipeline):
    with pytest.raises(ValueError):
        extract_comb_view(tiny_pipeline, "bogus")


def test_dft_insertion_preserves_view_consistency(lib,
                                                  small_circuit_mutable):
    c = small_circuit_mutable
    insert_test_points(c, lib, TpiConfig(n_test_points=3))
    insert_scan(c, lib, max_chain_length=50)
    view = extract_comb_view(c, "test")
    # Scan-enable and TR nets are constants, not free inputs.
    assert "scan_enable" in view.constants
    assert "tp_enable" in view.constants
    assert "scan_enable" not in view.input_nets


def test_node_order_stable_across_hash_seeds():
    """Regression: _topo_sort's ready-queue order must not depend on
    the process hash seed (the historical set()-dedupe bug).

    The within-level node order feeds every downstream consumer
    (simulation, testability, ATPG), so two processes with different
    PYTHONHASHSEED values must levelise identically.
    """
    import os
    import subprocess
    import sys
    from pathlib import Path

    script = (
        "from repro.circuits import s38417_like\n"
        "from repro.netlist import extract_comb_view\n"
        "view = extract_comb_view(s38417_like(scale=0.02), 'test')\n"
        "print(';'.join(n.inst.name for n in view.nodes))\n"
    )
    src = Path(__file__).resolve().parent.parent / "src"
    orders = []
    for seed in ("0", "4242"):
        env = dict(os.environ, PYTHONPATH=str(src), PYTHONHASHSEED=seed)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        orders.append(proc.stdout.strip())
    assert orders[0] == orders[1]
    assert orders[0].count(";") > 10  # a non-trivial node list
