"""Unit tests for the fault-tolerance primitives and the chaos harness.

Covers the pieces the executor composes: exception classification,
deterministic backoff, failure records, the crash-safe journal, retry
seed derivation, cache quarantine, and the scripted fault plans of
:mod:`repro.chaos`.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro import chaos, obs
from repro.chaos import FaultPlan, FaultSpec, InjectedFault
from repro.core.executor import ResultCache, derive_seed
from repro.core.resilience import (
    RetryPolicy,
    SweepJournal,
    SweepReport,
    TaskFailure,
    TaskTimeoutError,
    WorkerCrashError,
    completed_keys,
    exception_chain,
    is_retryable,
    read_journal,
)


# ----------------------------------------------------------------------
# Exception classification
# ----------------------------------------------------------------------
class TestClassification:
    @pytest.mark.parametrize("exc", [
        TaskTimeoutError("hung"),
        WorkerCrashError("died"),
        ConnectionError("reset"),
        EOFError("truncated"),
        OSError("transient"),
        TimeoutError("slow"),
        pickle.UnpicklingError("torn"),
        InjectedFault("scripted"),
    ], ids=lambda e: type(e).__name__)
    def test_infrastructure_failures_are_retryable(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize("exc", [
        AssertionError("invariant"),
        AttributeError("missing"),
        KeyError("unknown"),
        TypeError("wrong type"),
        ValueError("bad config"),
        RuntimeError("plain bug"),  # unknown types default to fatal
        Exception("generic"),
    ], ids=lambda e: type(e).__name__)
    def test_logic_and_unknown_errors_are_fatal(self, exc):
        assert not is_retryable(exc)

    def test_explicit_retryable_attribute_wins(self):
        exc = ValueError("transient despite the type")
        exc.retryable = True
        assert is_retryable(exc)
        exc2 = OSError("permanent despite the type")
        exc2.retryable = False
        assert not is_retryable(exc2)

    def test_fatal_types_beat_retryable_subclassing(self):
        # FileNotFoundError is an OSError; still retryable (I/O), but a
        # hypothetical OSError subclass that is ALSO a ValueError must
        # classify fatal — FATAL_TYPES is checked first.
        class ConfigIOError(ValueError, OSError):
            pass

        assert not is_retryable(ConfigIOError("bad path in config"))


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_deterministic_exponential_sequence(self):
        policy = RetryPolicy(max_retries=4, backoff_base_s=0.1,
                             backoff_factor=2.0, backoff_max_s=30.0)
        assert [policy.delay_s(n) for n in (1, 2, 3, 4)] == [
            pytest.approx(0.1), pytest.approx(0.2),
            pytest.approx(0.4), pytest.approx(0.8),
        ]

    def test_delay_is_capped(self):
        policy = RetryPolicy(backoff_base_s=10.0, backoff_factor=10.0,
                             backoff_max_s=25.0)
        assert policy.delay_s(3) == 25.0

    def test_attempt_zero_costs_nothing(self):
        assert RetryPolicy().delay_s(0) == 0.0


# ----------------------------------------------------------------------
# Failure records
# ----------------------------------------------------------------------
class TestTaskFailure:
    def test_from_exception_captures_chain(self):
        try:
            try:
                raise OSError("disk hiccup")
            except OSError as inner:
                raise TaskTimeoutError("gave up") from inner
        except TaskTimeoutError as raised:
            exc = raised
        failure = TaskFailure.from_exception(
            "s38417", 2.0, attempts=3, exc=exc, cache_key="ab" * 32)
        assert failure.label == "s38417@2%"
        assert failure.attempts == 3
        assert failure.error_type == "TaskTimeoutError"
        assert failure.retryable  # budget ran out, not hopeless
        assert failure.chain == (
            "TaskTimeoutError: gave up",
            "OSError: disk hiccup",
        )
        assert failure.exception is exc

    def test_exception_excluded_from_equality(self):
        a = TaskFailure.from_exception("c", 1.0, 1, ValueError("x"))
        b = TaskFailure.from_exception("c", 1.0, 1, ValueError("x"))
        assert a == b  # different exception objects, equal records

    def test_exception_chain_bounds_cycles(self):
        a, b = ValueError("a"), ValueError("b")
        a.__cause__, b.__cause__ = b, a
        assert exception_chain(a) == ("ValueError: a", "ValueError: b")


class TestSweepReport:
    def test_ok_and_cell_accounting(self):
        class FakeResult:
            def __init__(self, n):
                self.runs = {float(i): object() for i in range(n)}

        report = SweepReport(results={"a": FakeResult(4)})
        assert report.ok and report.successful_cells() == 4
        degraded = SweepReport(
            results={"a": FakeResult(3)},
            failures=(TaskFailure("a", 5.0, 2, "OSError", "boom"),),
        )
        assert not degraded.ok
        assert degraded.failed_cells() == (("a", 5.0),)


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.record("sweep_start", jobs=2)
            journal.record("task_done", key="k1", name="a", tp_percent=0.0)
        events = read_journal(path)
        assert [e["event"] for e in events] == ["sweep_start", "task_done"]
        assert all("ts" in e for e in events)
        assert completed_keys(events) == {"k1"}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.record("task_done", key="k1")
            journal.record("task_done", key="k2")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "task_done", "key": "k3"')  # torn
        events = read_journal(path)
        assert completed_keys(events) == {"k1", "k2"}

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_journal(tmp_path / "nope.jsonl") == []

    def test_resume_appends_fresh_truncates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepJournal(path) as journal:
            journal.record("task_done", key="old")
        with SweepJournal(path, resume=True) as journal:
            journal.record("task_done", key="new")
        assert completed_keys(read_journal(path)) == {"old", "new"}
        with SweepJournal(path, resume=False) as journal:
            journal.record("sweep_start")
        assert completed_keys(read_journal(path)) == set()


# ----------------------------------------------------------------------
# Retry seed derivation
# ----------------------------------------------------------------------
class TestDeriveSeed:
    def test_attempt_zero_matches_historical_derivation(self):
        key = "ab" * 32
        assert derive_seed(key) == derive_seed(key, attempt=0)
        assert derive_seed(key) == int(key[:16], 16) & 0x7FFFFFFFFFFFFFFF

    def test_attempts_decorrelate_deterministically(self):
        key = "cd" * 32
        seeds = [derive_seed(key, attempt=n) for n in range(4)]
        assert len(set(seeds)) == 4  # distinct per attempt
        assert seeds == [derive_seed(key, attempt=n) for n in range(4)]
        assert all(0 <= s < 2 ** 63 for s in seeds)


# ----------------------------------------------------------------------
# Cache quarantine (satellite: truncation regression)
# ----------------------------------------------------------------------
class TestQuarantine:
    def _store_summary(self, cache):
        from repro.core.executor import FlowSummary
        from repro.core.metrics import TestDataMetrics

        summary = FlowSummary(
            tp_percent=2.0,
            n_test_points=3,
            test=TestDataMetrics(
                n_test_points=3, n_flip_flops=40, n_chains=2, l_max=20,
                n_faults=1000, fault_coverage=0.97,
                fault_efficiency=0.99, n_patterns=80,
            ),
            area={"core_area_um2": 1234.5},
            sta=None,
            stage_seconds={"tpi_scan": 0.1},
            cached_stage_seconds={},
            log=(),
            cache_key="ef" * 32,
            worker_pid=1,
        )
        key = "ef" * 32
        cache.put(key, summary)
        return key, summary

    def test_truncated_entry_quarantined_not_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, _ = self._store_summary(cache)
        path = cache.path(key)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
        with obs.tracing() as tracer:
            assert cache.get(key) is None
        assert not path.exists()  # live path freed for the recompute
        quarantined = cache.quarantine_path(key)
        assert quarantined.exists()  # bytes kept for post-mortems
        assert quarantined.read_bytes() == data[: len(data) // 2]
        assert cache.corrupt == 1 and cache.misses == 1
        assert tracer.trace().counters.get("cache.quarantined") == 1.0

    def test_foreign_object_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "aa" * 32
        path = cache.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"not": "a summary"}))
        assert cache.get(key) is None
        assert cache.quarantine_path(key).exists()

    def test_quarantine_then_recompute_roundtrips(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, summary = self._store_summary(cache)
        cache.path(key).write_bytes(b"\x80garbage")
        assert cache.get(key) is None
        cache.put(key, summary)  # recompute lands on the freed path
        assert cache.get(key) == summary


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_matching(self):
        spec = FaultSpec(kind="raise", circuit="s38417", tp_percent=2.0,
                         stage="sta", times=1)
        assert spec.fires("s38417", 2.0, "sta", attempt=0)
        assert not spec.fires("s38417", 2.0, "sta", attempt=1)  # times=1
        assert not spec.fires("s38417", 3.0, "sta", attempt=0)
        assert not spec.fires("other", 2.0, "sta", attempt=0)
        assert not spec.fires("s38417", 2.0, "atpg", attempt=0)

    def test_wildcards_and_every_attempt(self):
        spec = FaultSpec(kind="raise", times=-1)
        for attempt in range(5):
            assert spec.fires("anything", 9.0, "tpi_scan", attempt)

    def test_corrupt_cache_never_fires_at_a_stage(self):
        spec = FaultSpec(kind="corrupt_cache", circuit="c", tp_percent=1.0)
        plan = FaultPlan(faults=(spec,))
        assert plan.corrupts_cache("c", 1.0)
        assert not plan.corrupts_cache("c", 2.0)
        assert not spec.fires("c", 1.0, "tpi_scan", 0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(faults=(
            FaultSpec(kind="kill", circuit="a", tp_percent=1.0,
                      stage="atpg", times=2),
            FaultSpec(kind="hang", seconds=9.5),
        ), seed=7)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan
        assert FaultPlan.from_dict(json.loads(
            json.dumps(plan.to_dict()))) == plan

    def test_plan_is_picklable(self):
        plan = FaultPlan(faults=(FaultSpec(kind="raise"),))
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestPlanFromEnv:
    def test_absent_means_none(self, monkeypatch):
        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        assert chaos.plan_from_env() is None

    def test_inline_json(self, monkeypatch):
        plan = FaultPlan(faults=(FaultSpec(kind="raise", circuit="x"),))
        monkeypatch.setenv(chaos.ENV_VAR, json.dumps(plan.to_dict()))
        assert chaos.plan_from_env() == plan

    def test_path(self, monkeypatch, tmp_path):
        plan = FaultPlan(faults=(FaultSpec(kind="hang", seconds=1.0),))
        path = tmp_path / "plan.json"
        plan.save(path)
        monkeypatch.setenv(chaos.ENV_VAR, str(path))
        assert chaos.plan_from_env() == plan

    def test_unreadable_raises_not_ignores(self, monkeypatch, tmp_path):
        monkeypatch.setenv(chaos.ENV_VAR, str(tmp_path / "missing.json"))
        with pytest.raises(OSError):
            chaos.plan_from_env()


class TestCheckpoint:
    def test_inactive_checkpoint_is_noop(self):
        chaos.checkpoint("tpi_scan")  # no active context: returns

    def test_raise_fault_fires_at_matching_stage(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", circuit="c", tp_percent=1.0,
                      stage="sta", times=1),
        ))
        with chaos.active(plan, "c", 1.0, attempt=0):
            chaos.checkpoint("tpi_scan")  # other stages unaffected
            with pytest.raises(InjectedFault, match="injected failure"):
                chaos.checkpoint("sta")
        chaos.checkpoint("sta")  # context restored on exit

    def test_retry_attempt_escapes_times_limited_fault(self):
        plan = FaultPlan(faults=(
            FaultSpec(kind="raise", circuit="c", tp_percent=1.0,
                      stage="sta", times=1),
        ))
        with chaos.active(plan, "c", 1.0, attempt=1):
            chaos.checkpoint("sta")  # attempt 1 >= times: no fire

    def test_none_plan_activation_costs_nothing(self):
        with chaos.active(None, "c", 1.0):
            chaos.checkpoint("sta")
