"""Tests for the concurrency lint pack (CONC001–CONC007).

Fixture snippets pin each rule's positive and negative cases; the
seeded-mutation checks prove the pack still catches the bug classes
when planted in the *real* daemon sources; and the real-tree test
keeps ``src/repro`` clean of concurrency findings.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint.concrules import lint_concurrency
from repro.lint.mutation import MUTATIONS, check_mutation
from repro.lint.selfrules import default_source_root

SRC = Path(__file__).resolve().parent.parent / "src"


def _lint(tmp_path, code, name="mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return lint_concurrency(tmp_path)


def _ids(report):
    return [d.rule_id for d in report.diagnostics]


# ---------------------------------------------------------------------------
# CONC001 — guarded state without its lock


def test_conc001_flags_unlocked_access_to_annotated_attr(tmp_path):
    report = _lint(tmp_path, """\
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}  # lint: shared-under=_lock

            def ok(self):
                with self._lock:
                    return len(self._jobs)

            def racy(self):
                return len(self._jobs)
    """)
    assert _ids(report).count("CONC001") == 1
    finding = report.diagnostics[0]
    assert "self._jobs" in finding.message
    assert finding.line == 13


def test_conc001_flags_partially_locked_paths(tmp_path):
    report = _lint(tmp_path, """\
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}  # lint: shared-under=_lock

            def sometimes(self, fast):
                if fast:
                    self._lock.acquire()
                self._jobs["x"] = 1
                if fast:
                    self._lock.release()
    """)
    # The lockset join over the two paths is empty: flagged.
    assert "CONC001" in _ids(report)


def test_conc001_respects_holds_contract(tmp_path):
    report = _lint(tmp_path, """\
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}  # lint: shared-under=_lock

            def _get(self, key):  # lint: holds=_lock
                return self._jobs[key]

            def ok(self, key):
                with self._lock:
                    return self._get(key)

            def racy(self, key):
                return self._get(key)
    """)
    ids = _ids(report)
    # _get's own body is clean (the contract seeds the lockset); the
    # unlocked *call* in racy() is the finding.
    assert ids.count("CONC001") == 1
    assert "_get" in report.diagnostics[0].message


# ---------------------------------------------------------------------------
# CONC002 — lock leaks


def test_conc002_flags_acquire_without_release(tmp_path):
    report = _lint(tmp_path, """\
        import threading

        lock = threading.Lock()

        def leaky():
            lock.acquire()
            return 1

        def balanced():
            lock.acquire()
            try:
                return 1
            finally:
                lock.release()
    """)
    conc002 = [d for d in report.diagnostics if d.rule_id == "CONC002"]
    assert len(conc002) == 1
    assert conc002[0].severity == "error"


def test_conc002_warns_on_exception_only_leak(tmp_path):
    report = _lint(tmp_path, """\
        import threading

        lock = threading.Lock()

        def exc_leak():
            lock.acquire()
            work()
            lock.release()
    """)
    conc002 = [d for d in report.diagnostics if d.rule_id == "CONC002"]
    assert len(conc002) == 1
    # Balanced on the normal path, leaked only if work() raises.
    assert conc002[0].severity == "warning"


# ---------------------------------------------------------------------------
# CONC003 / CONC004 — blocking calls


def test_conc003_flags_sleep_under_lock(tmp_path):
    report = _lint(tmp_path, """\
        import threading
        import time

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()

            def bad(self):
                with self._lock:
                    time.sleep(1.0)

            def good(self):
                with self._lock:
                    pass
                time.sleep(1.0)
    """)
    assert _ids(report).count("CONC003") == 1


def test_conc004_flags_blocking_call_in_async_def(tmp_path):
    report = _lint(tmp_path, """\
        import asyncio
        import time

        async def handler(reader):
            time.sleep(0.5)
            return await reader.read()

        async def fine(reader):
            await asyncio.sleep(0.5)
            return await reader.read()
    """)
    conc004 = [d for d in report.diagnostics if d.rule_id == "CONC004"]
    assert len(conc004) == 1
    assert "time.sleep" in conc004[0].message


# ---------------------------------------------------------------------------
# CONC005 — double acquire


def test_conc005_flags_reacquire_of_plain_lock(tmp_path):
    report = _lint(tmp_path, """\
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()
                self._rlock = threading.RLock()

            def deadlock(self):
                with self._lock:
                    with self._lock:
                        pass

            def reentrant_ok(self):
                with self._rlock:
                    with self._rlock:
                        pass
    """)
    assert _ids(report).count("CONC005") == 1


# ---------------------------------------------------------------------------
# CONC006 / CONC007 — callbacks and awaits under a lock


def test_conc006_warns_on_callback_under_lock(tmp_path):
    report = _lint(tmp_path, """\
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()

            def run(self, cancel_check):
                with self._lock:
                    cancel_check()
    """)
    conc006 = [d for d in report.diagnostics if d.rule_id == "CONC006"]
    assert len(conc006) == 1
    assert conc006[0].severity == "warning"


def test_conc007_flags_await_under_lock(tmp_path):
    report = _lint(tmp_path, """\
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()

            async def bad(self, conn):
                with self._lock:
                    await conn.send(b"x")

            async def good(self, conn):
                with self._lock:
                    pass
                await conn.send(b"x")
    """)
    assert _ids(report).count("CONC007") == 1


# ---------------------------------------------------------------------------
# Suppression and annotation plumbing


def test_conc_findings_respect_disable_comment(tmp_path):
    report = _lint(tmp_path, """\
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}  # lint: shared-under=_lock

            def startup_only(self):
                self._jobs.clear()  # lint: disable=CONC001
    """)
    assert "CONC001" not in _ids(report)


def test_docstring_directives_are_inert(tmp_path):
    report = _lint(tmp_path, '''\
        import threading

        class Manager:
            """Attrs documented as "# lint: shared-under=_lock" here."""

            def __init__(self):
                self._lock = threading.Lock()
                self._jobs = {}

            def reader(self):
                return len(self._jobs)
    ''')
    # The docstring mention is not a directive: no annotation, no
    # finding on the unlocked access.
    assert _ids(report) == []


# ---------------------------------------------------------------------------
# Seeded mutations against the real sources


def _mutation(name):
    by_name = {m.name: m for m in MUTATIONS}
    return by_name[name]


def test_drop_lock_mutation_is_caught(tmp_path):
    mutation = _mutation("drop-lock")
    hits = check_mutation(default_source_root(), mutation, tmp_path)
    assert hits, "dropped lock in JobManager.submit escaped CONC001"
    assert all(d.rule_id == "CONC001" for d in hits)


def test_block_async_mutation_is_caught(tmp_path):
    mutation = _mutation("block-async")
    hits = check_mutation(default_source_root(), mutation, tmp_path)
    assert hits, "time.sleep in async _respond escaped CONC004"
    assert all(d.rule_id == "CONC004" for d in hits)


# ---------------------------------------------------------------------------
# The real tree stays clean


def test_repro_sources_have_no_concurrency_findings():
    report = lint_concurrency(default_source_root())
    assert report.diagnostics == [], report.format_text()
