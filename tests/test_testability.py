"""Tests for SCOAP, COP and fanout-free-region analyses."""

import math

import pytest

from repro.netlist import Circuit, extract_comb_view
from repro.testability import (
    INFINITE,
    compute_cop,
    compute_scoap,
    find_regions,
    region_of_net,
)


@pytest.fixture()
def and_chain(lib):
    """pi0..pi3 -> AND2 tree -> po (balanced, depth 2)."""
    c = Circuit("andtree")
    for i in range(4):
        c.add_input(f"pi{i}")
    c.add_net("m0")
    c.add_net("m1")
    c.add_net("root")
    c.add_instance("a0", lib["AND2_X1"], {"A": "pi0", "B": "pi1", "Z": "m0"})
    c.add_instance("a1", lib["AND2_X1"], {"A": "pi2", "B": "pi3", "Z": "m1"})
    c.add_instance("a2", lib["AND2_X1"], {"A": "m0", "B": "m1", "Z": "root"})
    c.add_output("po", "root")
    return c


def test_scoap_and_tree(lib, and_chain):
    view = extract_comb_view(and_chain, "test")
    s = compute_scoap(view)
    # Inputs: CC = 1.
    assert s.cc0["pi0"] == 1 and s.cc1["pi0"] == 1
    # AND2: cc1 = sum + 1, cc0 = min + 1.
    assert s.cc1["m0"] == 3 and s.cc0["m0"] == 2
    assert s.cc1["root"] == 7 and s.cc0["root"] == 3
    # CO: root observable; input pi0 needs pi1 and m1 at 1.
    assert s.co["root"] == 0
    assert s.co["m0"] == s.cc1["m1"] + 1
    assert s.co["pi0"] == s.co["m0"] + s.cc1["pi1"] + 1


def test_scoap_unobservable_net_is_infinite(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_input("b")
    c.add_net("n1")
    c.add_net("n2")
    c.add_instance("g1", lib["INV_X1"], {"A": "a", "Z": "n1"})
    c.add_instance("g2", lib["AND2_X1"], {"A": "n1", "B": "b", "Z": "n2"})
    c.add_output("po", "n2")
    # clk-free circuit: all fine; now check a net with no observable path
    # by reading the clock-style constant: instead check co finite here.
    view = extract_comb_view(c, "test")
    s = compute_scoap(view)
    assert s.co["n1"] < INFINITE
    assert s.testability("n1") >= s.co["n1"]


def test_cop_probabilities_and_tree(lib, and_chain):
    view = extract_comb_view(and_chain, "test")
    cop = compute_cop(view)
    assert cop.p1["m0"] == pytest.approx(0.25)
    assert cop.p1["root"] == pytest.approx(1 / 16)
    assert cop.obs["root"] == pytest.approx(1.0)
    # pi0 observable only when pi1=1 and m1=1: 0.5 * 0.25.
    assert cop.obs["pi0"] == pytest.approx(0.5 * 0.25)
    # Detection probabilities.
    pd_sa1_root = cop.detection_probability("root", 1)
    assert pd_sa1_root == pytest.approx(1 - 1 / 16)
    pd_sa0_root = cop.detection_probability("root", 0)
    assert pd_sa0_root == pytest.approx(1 / 16)


def test_cop_xor_observability(lib):
    c = Circuit("x")
    c.add_input("a")
    c.add_input("b")
    c.add_net("n1")
    c.add_instance("g", lib["XOR2_X1"], {"A": "a", "B": "b", "Z": "n1"})
    c.add_output("po", "n1")
    cop = compute_cop(extract_comb_view(c, "test"))
    # XOR always propagates either input.
    assert cop.obs["a"] == pytest.approx(1.0)
    assert cop.p1["n1"] == pytest.approx(0.5)


def test_cop_hardest_faults_threshold(lib, and_chain):
    cop = compute_cop(extract_comb_view(and_chain, "test"))
    hard = list(cop.hardest_faults(0.10))
    nets = {net for net, _, _ in hard}
    assert "root" in nets  # sa0 at root needs all-ones: pd = 1/16


def test_ffr_decomposition(lib, and_chain):
    view = extract_comb_view(and_chain, "test")
    regions = find_regions(view)
    # The whole tree is one fanout-free region rooted at 'root'.
    assert set(regions) == {"root"}
    assert regions["root"].size == 3
    inverse = region_of_net(regions)
    assert inverse["m0"] == "root"
    assert inverse["root"] == "root"


def test_ffr_splits_at_fanout(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_input("b")
    c.add_net("stem")
    c.add_instance("g0", lib["AND2_X1"], {"A": "a", "B": "b", "Z": "stem"})
    c.add_net("o1")
    c.add_net("o2")
    c.add_instance("g1", lib["INV_X1"], {"A": "stem", "Z": "o1"})
    c.add_instance("g2", lib["INV_X1"], {"A": "stem", "Z": "o2"})
    c.add_output("p1", "o1")
    c.add_output("p2", "o2")
    regions = find_regions(extract_comb_view(c, "test"))
    assert set(regions) == {"stem", "o1", "o2"}
    assert regions["stem"].size == 1


def test_scoap_cop_agree_on_hardness_ranking(lib, small_circuit):
    """SCOAP-hard nets should be COP-hard too (loose correlation)."""
    view = extract_comb_view(small_circuit, "test")
    s = compute_scoap(view)
    cop = compute_cop(view)
    finite = [n for n in s.co if s.co[n] < INFINITE]
    hardest_scoap = sorted(finite, key=lambda n: -s.testability(n))[:30]
    median_pd = sorted(
        cop.detection_probability(n, 0) for n in finite
    )[len(finite) // 2]
    hard_hits = sum(
        1 for n in hardest_scoap
        if min(cop.detection_probability(n, 0),
               cop.detection_probability(n, 1)) < median_pd
    )
    assert hard_hits >= 15  # half the SCOAP-hard nets are COP-hard
