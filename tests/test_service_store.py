"""Durable job store and daemon restart recovery.

The tentpole contract under test: a daemon that dies — cleanly or by
``kill -9`` — loses no job *state*.  Every job transition is an fsync'd
line in ``<cache_dir>/jobs/store.jsonl``; a restarted
:class:`~repro.service.jobs.JobManager` replays it, re-adopts terminal
jobs with their full reports (``/result`` keeps working), marks jobs
the crash caught queued/running as ``interrupted``, and re-runs them
through the executor's resume path — where the sweep journal plus the
shared artifact cache make the resumed result **byte-identical** to an
uninterrupted run.

The store unit tests exercise the same crash-damage discipline as the
sweep journal's: torn lines are skipped *and counted*, never fatal,
and an append after a tear first terminates the half-line so the
damage stays confined to exactly one frame.
"""

from __future__ import annotations

import time

import pytest

from repro import api
from repro.service import (
    JobManager,
    JobRecord,
    JobStore,
    SweepRequest,
)
from repro.service.protocol import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_INTERRUPTED,
    JOB_QUEUED,
    JOB_RUNNING,
    TERMINAL_STATES,
    canonical_result_bytes,
    report_to_wire,
)
from repro.service.store import STORE_FILENAME, STORE_VERSION

#: Cheap ATPG knobs, matching tests/test_service.py.
ATPG = {"seed": 7, "backtrack_limit": 24, "max_deterministic": 60,
        "abort_recovery_blocks": 4, "second_chance_factor": 1}
SCALE = 0.012
OPTIONS = {"atpg": ATPG}


def request(tp_percents, **overrides):
    return SweepRequest(circuit="s38417", scale=SCALE,
                        tp_percents=tp_percents, options=OPTIONS,
                        **overrides)


def record_for(job_id, state, req, **overrides):
    return JobRecord(id=job_id, state=state, request=req,
                     submitted_at=overrides.pop("submitted_at",
                                                time.time()),
                     **overrides)


def wait_terminal(manager, job_id, timeout_s=300.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        record = manager.record(job_id)
        if record.state in TERMINAL_STATES:
            return record
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} not terminal in {timeout_s}s")


# ----------------------------------------------------------------------
# JobStore unit behaviour
# ----------------------------------------------------------------------
def test_store_replay_last_record_per_job_wins(tmp_path):
    req = request((0.0,))
    with JobStore(tmp_path) as store:
        store.record_transition(record_for("j1", JOB_QUEUED, req))
        store.record_transition(record_for("j2", JOB_QUEUED, req))
        store.record_transition(record_for("j1", JOB_RUNNING, req))
        store.record_transition(
            record_for("j1", JOB_DONE, req),
            report={"fake": "report"})

    replay = JobStore.replay(tmp_path)
    assert replay.torn_lines == 0
    # First-submission order, latest state each.
    assert [r.id for r in replay.records] == ["j1", "j2"]
    assert replay.records[0].state == JOB_DONE
    assert replay.records[1].state == JOB_QUEUED
    assert replay.reports == {"j1": {"fake": "report"}}


def test_store_replay_of_missing_file_is_empty(tmp_path):
    replay = JobStore.replay(tmp_path / "nowhere")
    assert replay.records == []
    assert replay.reports == {}
    assert replay.torn_lines == 0


def test_store_replay_skips_and_counts_torn_tail(tmp_path):
    req = request((0.0,))
    with JobStore(tmp_path) as store:
        store.record_transition(record_for("j1", JOB_DONE, req))
    path = tmp_path / STORE_FILENAME
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "record": {"id": "j2", "sta')  # torn

    replay = JobStore.replay(tmp_path)
    assert replay.torn_lines == 1
    assert [r.id for r in replay.records] == ["j1"]


@pytest.mark.parametrize("bad_line", [
    "not json at all",
    "[1, 2, 3]",                              # JSON, wrong shape
    '{"v": 999, "record": {}}',               # foreign store version
    '{"v": %d, "record": {"id": "jx"}}' % STORE_VERSION,  # undecodable
])
def test_store_replay_counts_every_damage_shape(tmp_path, bad_line):
    req = request((0.0,))
    with JobStore(tmp_path) as store:
        store.record_transition(record_for("j1", JOB_QUEUED, req))
    with open(tmp_path / STORE_FILENAME, "a", encoding="utf-8") as fh:
        fh.write(bad_line + "\n")

    replay = JobStore.replay(tmp_path)
    assert replay.torn_lines == 1
    assert [r.id for r in replay.records] == ["j1"]


def test_store_append_after_tear_confines_damage_to_one_frame(tmp_path):
    """A kill -9 tears the trailing line; the next writer must not
    glue its first frame onto the stump."""
    req = request((0.0,))
    with JobStore(tmp_path) as store:
        store.record_transition(record_for("j1", JOB_RUNNING, req))
    with open(tmp_path / STORE_FILENAME, "a", encoding="utf-8") as fh:
        fh.write('{"v": 1, "ts": 12.5, "rec')  # no newline: torn

    # A restarted daemon reopens the store and keeps appending.
    with JobStore(tmp_path) as store:
        store.record_transition(record_for("j1", JOB_DONE, req))

    replay = JobStore.replay(tmp_path)
    assert replay.torn_lines == 1          # the stump, nothing more
    assert replay.records[0].state == JOB_DONE


# ----------------------------------------------------------------------
# Manager restart recovery
# ----------------------------------------------------------------------
def test_restart_readopts_done_jobs_with_servable_report(tmp_path):
    manager = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        job = manager.submit(request((0.0,)))
        wait_terminal(manager, job.id)
        original = manager.report(job.id)
        assert original is not None
    finally:
        manager.shutdown()

    reborn = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        record = reborn.record(job.id)
        assert record.state == JOB_DONE
        assert record.submitted_at == pytest.approx(job.submitted_at)
        recovered = reborn.report(job.id)
        assert recovered is not None
        assert (canonical_result_bytes(recovered.results["s38417"])
                == canonical_result_bytes(original.results["s38417"]))
        metrics = reborn.metrics()
        assert metrics["jobs_recovered"] == 1
        assert metrics["jobs_interrupted"] == 0
        assert metrics["store_torn_lines"] == 0
    finally:
        reborn.shutdown()


def test_restart_resumes_interrupted_job_byte_identical(tmp_path):
    """Crash simulation: the store says ``running`` (the daemon died
    between the last cell and the done transition), the sweep journal
    and cache hold the finished cells.  The restarted manager must
    re-adopt the job as interrupted, resume it entirely from cache,
    and serve a byte-identical result."""
    levels = (0.0, 2.0)
    manager = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        job = manager.submit(request(levels))
        wait_terminal(manager, job.id)
        original = manager.report(job.id)
    finally:
        manager.shutdown()

    # Roll the durable state back to mid-run: append a running-state
    # transition, exactly what a crash-before-done leaves behind.
    with JobStore(tmp_path / "jobs") as store:
        store.record_transition(
            record_for(job.id, JOB_RUNNING, request(levels),
                       submitted_at=job.submitted_at,
                       started_at=time.time()))

    reborn = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        assert reborn.metrics()["jobs_interrupted"] == 1
        final = wait_terminal(reborn, job.id)
        assert final.state == JOB_DONE
        resumed = reborn.report(job.id)
        assert (canonical_result_bytes(resumed.results["s38417"])
                == canonical_result_bytes(original.results["s38417"]))
        # Resumption was a replay, not a recomputation.
        assert resumed.cache_hits == len(levels)
        assert resumed.cache_misses == 0
    finally:
        reborn.shutdown()

    # In-process reference: the whole round trip stayed faithful.
    local = api.sweep("s38417", scale=SCALE, tp_percents=levels,
                      **OPTIONS)
    assert (canonical_result_bytes(resumed.results["s38417"])
            == canonical_result_bytes(local))


def test_resubmission_coalesces_onto_recovered_job(tmp_path):
    """Idempotent resubmission: a tenant that lost its connection
    during a daemon restart resubmits the same spec and attaches to
    the recovered (interrupted, resuming) job instead of forking a
    duplicate computation."""
    levels = (1.0, 3.0)
    with JobStore(tmp_path / "jobs") as store:
        store.record_transition(
            record_for("jcrashed", JOB_RUNNING, request(levels),
                       started_at=time.time()))

    manager = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        twin = manager.submit(request(levels))
        if twin.coalesced_with is not None:
            # The recovered job was still in flight: attached to it.
            assert twin.coalesced_with == "jcrashed"
        else:
            # The tiny resumed sweep finished before the resubmission
            # landed — then the cache serves it without recomputing.
            assert manager.record("jcrashed").state in TERMINAL_STATES
        wait_terminal(manager, "jcrashed")
        final = wait_terminal(manager, twin.id)
        assert final.state == JOB_DONE
        assert (canonical_result_bytes(
                    manager.report(twin.id).results["s38417"])
                == canonical_result_bytes(
                    manager.report("jcrashed").results["s38417"]))
    finally:
        manager.shutdown()


def test_recovered_cancelled_job_stays_cancelled(tmp_path):
    with JobStore(tmp_path / "jobs") as store:
        store.record_transition(
            record_for("jgone", JOB_CANCELLED, request((0.0,)),
                       finished_at=time.time()))
    manager = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        assert manager.record("jgone").state == JOB_CANCELLED
        assert manager.report("jgone") is None
        assert manager.metrics()["jobs_recovered"] == 1
    finally:
        manager.shutdown()


def test_restart_counts_store_torn_lines(tmp_path):
    manager = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        job = manager.submit(request((0.0,)))
        wait_terminal(manager, job.id)
    finally:
        manager.shutdown()
    with open(tmp_path / "jobs" / STORE_FILENAME, "a",
              encoding="utf-8") as fh:
        fh.write('{"v": 1, "ts": 99.0, "reco')  # kill -9 stump

    reborn = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        metrics = reborn.metrics()
        assert metrics["store_torn_lines"] == 1
        assert reborn.record(job.id).state == JOB_DONE
    finally:
        reborn.shutdown()


def test_done_transition_carries_wire_report(tmp_path):
    """The store line for a done job embeds the full report wire form
    — that is what lets ``/result`` survive a restart."""
    manager = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        job = manager.submit(request((0.0,)))
        wait_terminal(manager, job.id)
        report = manager.report(job.id)
    finally:
        manager.shutdown()
    replay = JobStore.replay(tmp_path / "jobs")
    assert replay.reports[job.id] == report_to_wire(report)


def test_interrupted_state_is_declared_non_terminal():
    # The recovery design leans on this: an interrupted job must look
    # in-flight to the coalescing scan and to client wait() loops.
    assert JOB_INTERRUPTED not in TERMINAL_STATES
