"""Tests for the logic-expression trees (eval2 / eval3 / eval_prob)."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.library.logic import (
    And,
    Const,
    Mux,
    Not,
    Or,
    Var,
    Xor,
    exhaustive_truth_table,
)

TWO_IN = ["A", "B"]
THREE_IN = ["S", "A", "B"]


def _eval2_bits(expr, pins, assignment):
    env = {p: assignment[p] for p in pins}
    return expr.eval2(env) & 1


def _eval3_known(expr, pins, assignment):
    env = {
        p: ((1, 0) if assignment[p] else (0, 1)) for p in pins
    }
    ones, zeros = expr.eval3(env)
    if ones & 1:
        return 1
    if zeros & 1:
        return 0
    return None


CASES = [
    (Not("A"), ["A"]),
    (And("A", "B"), TWO_IN),
    (Or("A", "B"), TWO_IN),
    (Xor("A", "B"), TWO_IN),
    (Mux("S", Var("A"), Var("B")), THREE_IN),
    (Not(And("A", "B")), TWO_IN),
    (Not(Or(And("A", "B"), Var("C"))), ["A", "B", "C"]),
    (And("A", "B", "C", "D"), ["A", "B", "C", "D"]),
    (Or(Xor("A", "B"), Not("C")), ["A", "B", "C"]),
]


@pytest.mark.parametrize("expr,pins", CASES)
def test_eval3_matches_eval2_on_known_inputs(expr, pins):
    for bits in itertools.product((0, 1), repeat=len(pins)):
        assignment = dict(zip(pins, bits))
        v2 = _eval2_bits(expr, pins, assignment)
        v3 = _eval3_known(expr, pins, assignment)
        assert v3 == v2, f"{expr!r} at {assignment}"


@pytest.mark.parametrize("expr,pins", CASES)
def test_eval3_x_never_contradicts_completions(expr, pins):
    """A known eval3 output must hold under every completion of the Xs."""
    for known_mask in range(1 << len(pins)):
        env3 = {}
        known_pins = []
        for i, p in enumerate(pins):
            if (known_mask >> i) & 1:
                known_pins.append(p)
            else:
                env3[p] = (0, 0)
        for bits in itertools.product((0, 1), repeat=len(known_pins)):
            for p, b in zip(known_pins, bits):
                env3[p] = (1, 0) if b else (0, 1)
            ones, zeros = expr.eval3(env3)
            if not (ones & 1) and not (zeros & 1):
                continue  # X output: nothing to check
            claimed = 1 if ones & 1 else 0
            unknown = [p for p in pins if p not in known_pins]
            for completion in itertools.product((0, 1), repeat=len(unknown)):
                full = dict(zip(known_pins, bits))
                full.update(dict(zip(unknown, completion)))
                assert _eval2_bits(expr, pins, full) == claimed


@pytest.mark.parametrize("expr,pins", CASES)
def test_eval_prob_matches_enumeration(expr, pins):
    """Independent-input probability equals exhaustive enumeration."""
    table = exhaustive_truth_table(expr, pins)
    exact = sum(table) / len(table)
    est = expr.eval_prob({p: 0.5 for p in pins})
    assert est == pytest.approx(exact, abs=1e-12)


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_bit_parallel_and_matches_scalar(a, b):
    expr = Not(And("A", "B"))
    word = expr.eval2({"A": a, "B": b})
    mask = (1 << 64) - 1
    assert word & mask == (~(a & b)) & mask


@given(st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
def test_eval_prob_stays_in_unit_interval(pa, pb, ps):
    expr = Mux("S", Xor("A", "B"), Not(And("A", "B")))
    p = expr.eval_prob({"A": pa, "B": pb, "S": ps})
    assert -1e-9 <= p <= 1.0 + 1e-9


def test_const_nodes():
    one = Const(1)
    zero = Const(0)
    assert one.eval_prob({}) == 1.0
    assert zero.eval_prob({}) == 0.0
    with pytest.raises(ValueError):
        Const(2)


def test_support_order_and_uniqueness():
    expr = Or(And("A", "B"), Xor("A", "C"))
    assert expr.support() == ["A", "B", "C"]


def test_nary_gate_requires_two_operands():
    with pytest.raises(ValueError):
        And("A")


def test_truth_table_rejects_wide_functions():
    pins = [f"p{i}" for i in range(17)]
    with pytest.raises(ValueError):
        exhaustive_truth_table(And(*pins), pins)
