"""Cache-key / spec-key coverage for engine-shaped config fields.

A new ``FlowConfig`` field that influenced results but was omitted from
the content-hash key would silently serve one engine's cached tables to
another.  These are the regression gates: the flow cache key and the
daemon's job spec key must both separate on ``placer``, and — the
generic guard — *every* ``FlowConfig`` field must perturb the config
fingerprint, so the next field added cannot be forgotten.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.atpg import AtpgConfig
from repro.circuits import s38417_like
from repro.core import (
    FlowConfig,
    circuit_structural_hash,
    config_fingerprint,
    flow_cache_key,
)
from repro.library import cmos130
from repro.sta.analysis import StaConfig
from repro.service.protocol import SweepRequest


@pytest.fixture(scope="module")
def circuit():
    return s38417_like(scale=0.012)


@pytest.fixture(scope="module")
def library():
    return cmos130()


def test_flow_cache_key_separates_placers(circuit, library):
    quad = flow_cache_key(circuit, FlowConfig(placer="quadratic"),
                          library)
    sa = flow_cache_key(circuit, FlowConfig(placer="sa"), library)
    assert quad != sa
    # Same-engine keys stay stable, so caching still works at all.
    again = flow_cache_key(circuit, FlowConfig(placer="sa"), library)
    assert sa == again


def test_spec_key_separates_placers():
    base = dict(circuit="s38417", scale=0.01, tp_percents=(0.0, 2.0))
    quad = SweepRequest(**base)
    sa = SweepRequest(options={"placer": "sa"}, **base)
    explicit_quad = SweepRequest(options={"placer": "quadratic"}, **base)
    assert quad.spec_key() != sa.spec_key()
    assert explicit_quad.spec_key() != sa.spec_key()
    # Wire round trip preserves the separation.
    assert SweepRequest.from_wire(sa.to_wire()).spec_key() \
        == sa.spec_key()


def _perturbed(field: dataclasses.Field, value):
    """A same-type, different-content value for one FlowConfig field."""
    if field.name == "placer":
        return "sa"
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 0.125
    if isinstance(value, frozenset):
        return frozenset({"__perturbed_net__"})
    if isinstance(value, AtpgConfig):
        return dataclasses.replace(value, seed=value.seed + 1)
    if isinstance(value, StaConfig):
        return dataclasses.replace(
            value, hold_margin_ps=value.hold_margin_ps + 1.0)
    if value is None:  # Optional[int] knobs
        return 7
    raise AssertionError(
        f"no perturbation rule for FlowConfig.{field.name} "
        f"({type(value).__name__}); add one so the fingerprint guard "
        "keeps covering every field")


def test_every_flow_config_field_perturbs_the_fingerprint():
    base = FlowConfig()
    base_fp = config_fingerprint(base)
    assert config_fingerprint(FlowConfig()) == base_fp  # stable
    for field in dataclasses.fields(FlowConfig):
        value = getattr(base, field.name)
        variant = base.replace(**{field.name: _perturbed(field, value)})
        assert config_fingerprint(variant) != base_fp, (
            f"FlowConfig.{field.name} does not reach the config "
            "fingerprint: cached results would collide across "
            "configs differing only in that field"
        )


def test_cache_key_depends_on_config_and_structure(circuit, library):
    base = flow_cache_key(circuit, FlowConfig(), library)
    assert base == flow_cache_key(circuit, FlowConfig(), library)
    assert base != flow_cache_key(circuit, FlowConfig(tp_percent=2.0),
                                  library)
    other = s38417_like(scale=0.02)
    assert circuit_structural_hash(other) \
        != circuit_structural_hash(circuit)
