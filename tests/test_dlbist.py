"""Tests for bit-flipping deterministic LBIST."""

import pytest

from repro.lbist import DlbistConfig, run_dlbist
from repro.lbist.dlbist import (
    BFF_AREA_FIXED_UM2,
    BFF_AREA_PER_FLIP_UM2,
    _hamming_on_cares,
)
from repro.scan import insert_scan
from repro.tpi import TpiConfig, insert_test_points


def test_hamming_on_cares():
    # pattern 0b1010, cares on bits 0..2 wanting 0b110.
    assert _hamming_on_cares(0b1010, 0b0111, 0b0110) == 1
    assert _hamming_on_cares(0b0110, 0b0111, 0b0110) == 0
    # Don't-care bits never count.
    assert _hamming_on_cares(0b1111, 0b0001, 0b0001) == 0


@pytest.fixture(scope="module")
def dlbist_pair():
    from repro.circuits import s38417_like
    from repro.library import cmos130
    lib = cmos130()
    results = {}
    for tp in (0, 3):
        c = s38417_like(scale=0.03)
        if tp:
            insert_test_points(c, lib, TpiConfig(
                n_test_points=round(tp / 100 * c.num_flip_flops)
            ))
        insert_scan(c, lib, max_chain_length=50)
        results[tp] = run_dlbist(c, DlbistConfig(n_patterns=512))
    return results


def test_embedding_improves_coverage(dlbist_pair):
    for result in dlbist_pair.values():
        assert result.final_coverage > result.pseudo_random_coverage
        assert result.n_cubes > 0
        assert result.n_flips >= 0


def test_bff_cost_model(dlbist_pair):
    for result in dlbist_pair.values():
        expected = (
            BFF_AREA_FIXED_UM2
            + BFF_AREA_PER_FLIP_UM2 * result.n_flips
        )
        assert result.bff_area_um2 == pytest.approx(expected)


def test_test_points_shrink_dlbist_hardware(dlbist_pair):
    """The paper's Section 2/5 claim: TPI + DLBIST beats DLBIST alone."""
    base = dlbist_pair[0]
    with_tps = dlbist_pair[3]
    assert with_tps.n_flips < base.n_flips
    assert with_tps.bff_area_um2 < base.bff_area_um2
    # And coverage does not regress.
    assert with_tps.final_coverage >= base.final_coverage - 0.01


def test_pattern_count_preserved(dlbist_pair):
    for result in dlbist_pair.values():
        # Embedding flips bits in existing patterns; it never adds
        # patterns (that is the whole point of DLBIST).
        assert len(result.patterns) == 512
