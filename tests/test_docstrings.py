"""Documentation meta-test: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro", "repro.netlist", "repro.library", "repro.circuits",
    "repro.testability", "repro.tpi", "repro.scan", "repro.atpg",
    "repro.layout", "repro.extraction", "repro.sta", "repro.lbist",
    "repro.core",
]


def _iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(
                    f"{package_name}.{info.name}"
                )


def test_every_module_has_a_docstring():
    for module in _iter_modules():
        assert module.__doc__, f"{module.__name__} lacks a docstring"


def test_every_public_callable_is_documented():
    missing = []
    for module in _iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their source
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for mname, member in vars(obj).items():
                        if mname.startswith("_"):
                            continue
                        if inspect.isfunction(member) and not \
                                inspect.getdoc(member):
                            missing.append(
                                f"{module.__name__}.{name}.{mname}"
                            )
    assert not missing, f"undocumented public items: {missing[:10]}"
