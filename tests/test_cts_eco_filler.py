"""Tests for clock-tree synthesis, ECO placement and filler insertion."""

import pytest

from repro.layout import (
    MAX_CLUSTER_SINKS,
    build_floorplan,
    desired_position,
    eco_place,
    global_place,
    insert_fillers,
    synthesize_all_clock_trees,
)
from repro.netlist import validate


@pytest.fixture()
def placed(lib, small_circuit_mutable):
    c = small_circuit_mutable
    plan = build_floorplan(c, 0.85)
    placement = global_place(c, plan)
    return c, plan, placement


def test_cts_rewires_every_ff(placed, lib):
    c, plan, placement = placed
    domain = c.clocks[0].net
    ffs = [i.name for i in c.instances.values() if i.is_sequential]
    trees = synthesize_all_clock_trees(c, lib, dict(placement.positions))
    tree = trees[0]
    assert set(tree.sink_leaf) == set(ffs)
    # No FF hangs on the raw clock net any more.
    raw_sinks = {i for i, _ in c.nets[domain].sinks}
    for name in ffs:
        assert name not in raw_sinks
        leaf_net = tree.sink_leaf[name]
        clk_pin = c.instances[name].cell.clock_pin
        assert c.instances[name].conns[clk_pin] == leaf_net
    assert validate(c).ok is False or True  # buffers unplaced is fine
    # The root buffer is driven from the clock port.
    root_candidates = [
        b for b in tree.buffers
        if c.instances[b].conns["A"] == domain
    ]
    assert len(root_candidates) == 1


def test_cts_cluster_fanout_bounded(placed, lib):
    c, plan, placement = placed
    trees = synthesize_all_clock_trees(c, lib, dict(placement.positions))
    for tree in trees:
        for buf in tree.buffers:
            net = c.instances[buf].conns["Z"]
            assert len(c.nets[net].sinks) <= MAX_CLUSTER_SINKS


def test_eco_place_inserts_near_desired(placed, lib):
    c, plan, placement = placed
    trees = synthesize_all_clock_trees(c, lib, dict(placement.positions))
    buffers = [b for t in trees for b in t.buffers]
    hints = {}
    for t in trees:
        hints.update(t.buffer_positions)
    placed_names = eco_place(c, placement, buffers, hints=hints)
    assert set(placed_names) == set(buffers)
    for name in buffers:
        x, y = placement.positions[name]
        hx, hy = hints[name]
        assert abs(y - hy) <= plan.core.height / 2
    # Rows remain legal.
    occupancy = placement.row_occupancy_sites(c)
    for row, used in zip(plan.rows, occupancy):
        assert used <= row.n_sites


def test_desired_position_uses_connectivity(placed, lib):
    c, plan, placement = placed
    some_gate = next(
        i.name for i in c.instances.values()
        if not i.is_sequential and not i.cell.is_filler
    )
    pos = desired_position(c, placement, some_gate)
    assert plan.chip.contains(pos)


def test_fillers_close_every_gap(placed, lib):
    c, plan, placement = placed
    report = insert_fillers(c, placement, lib)
    assert report.n_fillers > 0
    assert 0.0 < report.filler_fraction < 0.5
    # Every row is now exactly full.
    occupancy = placement.row_occupancy_sites(c)
    for row, used in zip(plan.rows, occupancy):
        assert used == row.n_sites
    # Fillers are real, pin-free instances.
    fillers = [i for i in c.instances.values() if i.cell.is_filler]
    assert len(fillers) == report.n_fillers
    assert all(not f.conns for f in fillers)
