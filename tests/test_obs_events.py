"""Tests for the structured JSONL event log.

Contracts under test: deterministic ordering (seq + sorted keys),
leveled filtering, copy-on-bind context nesting (thread-local, so
concurrent daemon workers cannot cross-contaminate), dual wall +
monotonic timestamps, env-driven install, and the free-when-off null
path.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.events import _NULL_BIND, EventLog


def _mem() -> EventLog:
    return EventLog(level="debug", memory=True)


# ----------------------------------------------------------------------
# Emission basics
# ----------------------------------------------------------------------
def test_events_carry_both_clocks_and_seq():
    log = _mem()
    log.emit("a")
    log.emit("b", "warn", cell="x@2%")
    first, second = log.events
    assert first["seq"] == 1 and second["seq"] == 2
    assert first["ts"] > 0 and first["ts_mono"] > 0
    assert second["level"] == "warn" and second["cell"] == "x@2%"


def test_level_filtering_drops_below_threshold():
    log = EventLog(level="warn", memory=True)
    log.emit("quiet", "debug")
    log.emit("info", "info")
    log.emit("loud", "warn")
    log.emit("bang", "error")
    assert [e["event"] for e in log.events] == ["loud", "bang"]


def test_unknown_levels_raise():
    with pytest.raises(ValueError):
        EventLog(level="verbose")
    with pytest.raises(ValueError):
        _mem().emit("x", "shout")


def test_file_sink_writes_sorted_key_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(path=str(path), level="debug")
    log.emit("zeta", beta=1, alpha=2)
    log.close()
    line = path.read_text().strip()
    record = json.loads(line)
    assert record["event"] == "zeta"
    keys = list(json.loads(line))
    assert keys == sorted(keys)  # sort_keys=True -> stable diffs


def test_read_events_skips_torn_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"event": "ok", "seq": 1}\n{"event": "torn", "se')
    events = obs.read_events(str(path))
    assert [e["event"] for e in events] == ["ok"]


# ----------------------------------------------------------------------
# Context binding
# ----------------------------------------------------------------------
def test_bind_nests_and_restores():
    log = _mem()
    with log.bind(run_id="r1"):
        log.emit("outer")
        with log.bind(job_id="j1"):
            log.emit("inner")
        log.emit("outer_again")
    log.emit("unbound")
    outer, inner, again, unbound = log.events
    assert outer["run_id"] == "r1" and "job_id" not in outer
    assert inner["run_id"] == "r1" and inner["job_id"] == "j1"
    assert again["run_id"] == "r1" and "job_id" not in again
    assert "run_id" not in unbound


def test_explicit_fields_win_over_bound_context():
    log = _mem()
    with log.bind(cell="bound"):
        log.emit("e", cell="explicit")
    assert log.events[0]["cell"] == "explicit"


def test_bind_context_is_thread_local():
    log = _mem()
    ready = threading.Barrier(2)

    def worker(job_id: str) -> None:
        with log.bind(job_id=job_id):
            ready.wait(timeout=5)  # both threads inside their bind
            log.emit("tick")
            ready.wait(timeout=5)

    threads = [threading.Thread(target=worker, args=(f"j{i}",))
               for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seen = sorted(e["job_id"] for e in log.events)
    assert seen == ["j0", "j1"]


# ----------------------------------------------------------------------
# Process-wide install
# ----------------------------------------------------------------------
def test_null_event_log_is_the_default():
    assert not obs.events_active()
    log = obs.get_event_log()
    assert log is obs.NULL_EVENT_LOG
    assert log.bind(run_id="x") is _NULL_BIND  # one shared scope
    log.emit("anything", data=1)  # no-op, nothing stored
    assert log.events == []
    obs.emit("module_level")  # module helper is a no-op too


def test_install_event_log_scopes_and_restores():
    log = _mem()
    previous = obs.install_event_log(log)
    try:
        assert obs.events_active()
        with obs.bind(run_id="abc"):
            obs.emit("hello", n=1)
        assert log.events[0]["run_id"] == "abc"
    finally:
        obs.install_event_log(previous)
    assert not obs.events_active()


def test_install_events_from_env(tmp_path):
    path = tmp_path / "env_events.jsonl"
    installed = obs.install_events_from_env(
        {"REPRO_EVENTS": str(path), "REPRO_EVENTS_LEVEL": "warn"})
    try:
        assert installed is not None and installed.level == "warn"
        obs.emit("dropped", "info")
        obs.emit("kept", "error")
        installed.close()
    finally:
        obs.install_event_log(obs.NULL_EVENT_LOG)
    assert [e["event"] for e in obs.read_events(str(path))] == ["kept"]


def test_install_events_from_env_without_variable_is_noop():
    assert obs.install_events_from_env({}) is None
    assert not obs.events_active()
