"""Tests for the TPI candidate scorer on constructed situations."""

import pytest

from repro.netlist import Circuit, extract_comb_view
from repro.testability import compute_cop
from repro.tpi import CandidateScorer, collect_hard_faults
from repro.tpi.cost import HardFault, _log_gain


def _gated_region(lib, width=8, fan=6):
    """A comparator-gated bundle: `fan` signals observable only when a
    `width`-wide AND of inputs is 1 — the textbook control-point case.
    """
    c = Circuit("gated")
    enable_inputs = []
    for i in range(width):
        c.add_input(f"e{i}")
        enable_inputs.append(f"e{i}")
    # Wide AND chain for the enable.
    prev = enable_inputs[0]
    for i, name in enumerate(enable_inputs[1:]):
        c.add_net(f"en{i}")
        c.add_instance(f"and_en{i}", lib["AND2_X1"],
                       {"A": prev, "B": name, "Z": f"en{i}"})
        prev = f"en{i}"
    enable = prev
    for i in range(fan):
        c.add_input(f"d{i}")
        c.add_net(f"g{i}")
        c.add_instance(f"gate{i}", lib["AND2_X1"],
                       {"A": f"d{i}", "B": enable, "Z": f"g{i}"})
        c.add_output(f"o{i}", f"g{i}")
    return c, enable


def test_log_gain_clipping():
    assert _log_gain(0.5, 0.4) == 0.0
    assert _log_gain(1e-6, 1e-3) == pytest.approx(3.0)


def test_control_point_on_enable_scores_highest(lib):
    c, enable = _gated_region(lib)
    view = extract_comb_view(c, "test")
    cop = compute_cop(view)
    hard = collect_hard_faults(cop, 0.05)
    assert hard, "the gated bundle must produce hard faults"
    scorer = CandidateScorer(view, cop, hard)
    enable_score = scorer.score(enable)
    # The enable beats any single gated data input.
    assert enable_score > scorer.score("d0")
    # Control gain dominates at the enable (the observability it
    # restores through the gate side-inputs).
    assert scorer.control_gain(enable) > 0


def test_observation_gain_on_funnel(lib):
    """An observation point at a funnel helps everything upstream."""
    c = Circuit("funnel")
    for i in range(4):
        c.add_input(f"i{i}")
    c.add_net("m0")
    c.add_net("m1")
    c.add_net("root")
    c.add_instance("a", lib["AND2_X1"], {"A": "i0", "B": "i1", "Z": "m0"})
    c.add_instance("b", lib["AND2_X1"], {"A": "i2", "B": "i3", "Z": "m1"})
    c.add_instance("r", lib["AND2_X1"], {"A": "m0", "B": "m1", "Z": "root"})
    c.add_output("o", "root")
    view = extract_comb_view(c, "test")
    cop = compute_cop(view)
    hard = [
        HardFault(net, sv, cop.detection_probability(net, sv))
        for net in ("m0", "m1", "i0")
        for sv in (0, 1)
    ]
    scorer = CandidateScorer(view, cop, hard)
    # Observation at m0 rescues m0/i0 faults; positive gain expected.
    assert scorer.observation_gain("m0") > 0
    # Observation at the already-observable root gains nothing extra
    # over its current observability.
    assert scorer.observation_gain("root") <= scorer.observation_gain("m0")
