"""Contract tests on FlowConfig/FlowResult that the executor relies on.

Two contracts:

* ``FlowConfig.exclude_nets`` is an immutable ``frozenset`` (any
  iterable is normalised on construction) and a single shared
  ``FlowConfig`` drives any number of flow runs without leaking state
  between them — the flow hands TPI a fresh mutable copy per call.

* ``FlowResult.stage_seconds`` keys are the documented
  :data:`repro.core.flow.STAGE_KEYS` contract: a full run records
  exactly those keys in that order; skipping a phase drops exactly the
  documented subset.  The executor's cache summaries, the benches and
  any dashboard key on these names.
"""

from __future__ import annotations

import pytest

from repro.atpg import AtpgConfig
from repro.circuits import s38417_like
from repro.core import FlowConfig, LAYOUT_STAGE_KEYS, STAGE_KEYS, run_flow
from repro.library import cmos130
from repro.tpi import TpiConfig, insert_test_points

FAST_ATPG = AtpgConfig(seed=5, backtrack_limit=16, max_deterministic=30,
                       abort_recovery_blocks=2, second_chance_factor=1)


# ----------------------------------------------------------------------
# exclude_nets immutability
# ----------------------------------------------------------------------
def test_flow_config_normalises_exclude_nets_to_frozenset():
    for raw in (["n1", "n2"], {"n1", "n2"}, ("n1", "n2"),
                frozenset({"n1", "n2"})):
        config = FlowConfig(exclude_nets=raw)
        assert isinstance(config.exclude_nets, frozenset)
        assert config.exclude_nets == frozenset({"n1", "n2"})


def test_shared_flow_config_runs_do_not_leak_state():
    lib = cmos130()
    exclude = frozenset({"not_a_real_net_1", "not_a_real_net_2"})
    config = FlowConfig(
        tp_percent=10.0,
        exclude_nets=exclude,
        run_layout_phase=False,
        run_atpg_phase=False,
        atpg=FAST_ATPG,
    )
    first = run_flow(s38417_like(scale=0.012), lib, config)
    mid_snapshot = config.exclude_nets
    second = run_flow(s38417_like(scale=0.012), lib, config)

    # The shared config is untouched by either run ...
    assert config.exclude_nets == exclude
    assert config.exclude_nets is mid_snapshot
    # ... and both runs made identical decisions from it.
    assert first.n_test_points == second.n_test_points >= 1
    assert [tp.net for tp in first.tpi.inserted] \
        == [tp.net for tp in second.tpi.inserted]


def test_tpi_does_not_mutate_callers_exclusion_set():
    lib = cmos130()
    circuit = s38417_like(scale=0.012)
    exclude = {"user_net_a", "user_net_b"}
    insert_test_points(circuit, lib, TpiConfig(
        n_test_points=1, exclude_nets=exclude,
    ))
    # TPI internally adds clock/scan-control nets to its forbidden set;
    # the caller's set must not see them.
    assert exclude == {"user_net_a", "user_net_b"}


# ----------------------------------------------------------------------
# stage_seconds key contract
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def full_run():
    return run_flow(s38417_like(scale=0.012), cmos130(),
                    FlowConfig(tp_percent=5.0, atpg=FAST_ATPG))


def test_full_flow_records_exactly_the_documented_stages(full_run):
    assert tuple(full_run.stage_seconds) == STAGE_KEYS
    assert all(v >= 0.0 for v in full_run.stage_seconds.values())


def test_layout_stage_keys_are_a_documented_subset():
    assert set(LAYOUT_STAGE_KEYS) < set(STAGE_KEYS)
    # Contract order: layout keys sit between tpi_scan and atpg.
    assert STAGE_KEYS[0] == "tpi_scan"
    assert STAGE_KEYS[-1] == "atpg"
    assert STAGE_KEYS[1:-1] == LAYOUT_STAGE_KEYS


def test_skipping_layout_drops_exactly_the_layout_stages():
    result = run_flow(s38417_like(scale=0.012), cmos130(), FlowConfig(
        tp_percent=0.0, run_layout_phase=False, atpg=FAST_ATPG,
    ))
    expected = tuple(k for k in STAGE_KEYS if k not in LAYOUT_STAGE_KEYS)
    assert tuple(result.stage_seconds) == expected


def test_skipping_atpg_drops_exactly_the_atpg_stage():
    result = run_flow(s38417_like(scale=0.012), cmos130(), FlowConfig(
        tp_percent=0.0, run_atpg_phase=False,
    ))
    assert tuple(result.stage_seconds) == STAGE_KEYS[:-1]
