"""Tests for structural circuit profiling."""

from repro.circuits import control_core, s38417_like
from repro.circuits.stats import compare_profiles, profile_circuit


def test_profile_counts(small_circuit):
    stats = profile_circuit(small_circuit)
    assert stats.n_cells == sum(
        1 for i in small_circuit.instances.values()
        if not i.cell.is_filler
    )
    assert stats.n_flip_flops == small_circuit.num_flip_flops
    assert sum(stats.cell_histogram.values()) == stats.n_cells
    assert sum(stats.fanout_histogram.values()) == stats.n_nets
    assert stats.max_depth > 5
    assert 0 < stats.mean_depth <= stats.max_depth
    assert "shadow" in stats.tag_histogram


def test_profile_format(small_circuit):
    text = profile_circuit(small_circuit).format()
    assert "top cells" in text and "fanout" in text and "origins" in text


def test_compare_profiles():
    a = profile_circuit(s38417_like(scale=0.02))
    same = profile_circuit(s38417_like(scale=0.02))
    assert compare_profiles(a, same) == []
    other = profile_circuit(control_core(scale=0.06))
    assert compare_profiles(a, other)  # different sizes detected
