"""Tests for NLDM lookup tables (interpolation, extrapolation, flags)."""

import pytest
from hypothesis import given, strategies as st

from repro.library.nldm import NLDMTable


@pytest.fixture()
def table():
    return NLDMTable(
        slews=[10.0, 100.0],
        loads=[1.0, 11.0],
        values=[[5.0, 15.0], [25.0, 35.0]],
    )


def test_exact_at_grid_points(table):
    assert table.lookup(10.0, 1.0).value == pytest.approx(5.0)
    assert table.lookup(100.0, 11.0).value == pytest.approx(35.0)


def test_bilinear_midpoint(table):
    mid = table.lookup(55.0, 6.0)
    assert mid.value == pytest.approx(20.0)
    assert not mid.extrapolated


def test_extrapolation_flagged_and_linear(table):
    high = table.lookup(10.0, 21.0)  # one grid step beyond the corner
    assert high.extrapolated
    assert high.value == pytest.approx(25.0)  # 5 + 2 * (15-5)
    low = table.lookup(0.0, 1.0)
    assert low.extrapolated


def test_intrinsic_is_zero_slew_zero_load(table):
    # Row slope: (25-5)/90 per ps slew; col slope: (15-5)/10 per fF.
    expected = 5.0 - 10.0 * (20.0 / 90.0) - 1.0 * (10.0 / 10.0)
    assert table.intrinsic_ps() == pytest.approx(expected)


def test_index_validation():
    with pytest.raises(ValueError):
        NLDMTable([1.0, 1.0], [1.0, 2.0], [[0, 0], [0, 0]])
    with pytest.raises(ValueError):
        NLDMTable([1.0, 2.0], [1.0, 2.0], [[0, 0]])


@given(st.floats(min_value=0.0, max_value=2000.0),
       st.floats(min_value=0.0, max_value=400.0))
def test_linear_table_monotone_in_load_and_slew(slew, load):
    table = NLDMTable.linear(40.0, 10.0, 0.2)
    base = table.lookup(slew, load).value
    assert table.lookup(slew, load + 5.0).value >= base - 1e-9
    assert table.lookup(slew + 5.0, load).value >= base - 1e-9


def test_linear_table_flags_out_of_range():
    table = NLDMTable.linear(40.0, 10.0, 0.2)
    assert not table.lookup(60.0, 20.0).extrapolated
    assert table.lookup(table.max_slew * 2, 20.0).extrapolated
    assert table.lookup(60.0, table.max_load * 2).extrapolated
