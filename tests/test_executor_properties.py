"""Property-based tests: PPSFP fault simulation and config fingerprints.

Two families:

* :class:`~repro.atpg.fault_sim.FaultSimulator` implements
  parallel-pattern single-fault propagation with event-driven cone
  pruning — an optimisation stack with plenty of room for subtle bugs.
  The property: for random small circuits and random pattern blocks,
  its detection sets must equal a naive reference that resimulates the
  whole circuit one fault at a time, one pattern at a time, with the
  fault forced at the site (stem) or at a single sink pin (branch).

* :func:`~repro.core.executor.config_fingerprint` keys the executor's
  result cache.  The properties: logically equal configs fingerprint
  equally no matter the construction order of their fields, dicts and
  sets; distinct configs fingerprint distinctly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.atpg import AtpgConfig
from repro.atpg.fault_sim import FaultSimulator
from repro.atpg.faults import build_fault_list
from repro.atpg.simulator import BitSimulator
from repro.circuits import CircuitProfile, ClockSpec, generate
from repro.core import FlowConfig, config_fingerprint
from repro.library import cmos130
from repro.netlist import extract_comb_view
from repro.netlist.net import PORT


# ----------------------------------------------------------------------
# Naive one-fault-at-a-time reference simulator
# ----------------------------------------------------------------------
def naive_values(view, assignment, fault=None):
    """Full-circuit single-pattern simulation with one fault forced.

    Args:
        view: Combinational view.
        assignment: 0/1 value per input net.
        fault: Fault to inject, or None for the good machine.

    Returns:
        0/1 value per net.
    """
    values = dict(view.constants)
    for net in view.input_nets:
        values[net] = assignment.get(net, 0)
    if fault is not None and fault.sink is None and fault.net in values:
        values[fault.net] = fault.value
    for node in view.nodes:
        pin_vals = {}
        for pin, net in node.pin_nets.items():
            value = values[net]
            if (fault is not None and fault.sink is not None
                    and fault.sink == (node.inst.name, pin)
                    and net == fault.net):
                value = fault.value  # branch fault: this pin only
            pin_vals[pin] = value
        out = node.expr.eval2(pin_vals) & 1
        if fault is not None and fault.sink is None \
                and node.out_net == fault.net:
            out = fault.value  # stem fault: the whole net is stuck
        values[node.out_net] = out
    return values


def naive_detected(view, assignment, fault):
    """True when ``fault`` is observable under ``assignment``."""
    good = naive_values(view, assignment)
    bad = naive_values(view, assignment, fault)
    for net, (inst, pin) in view.output_refs:
        good_obs = good[net]
        bad_obs = bad[net]
        if (fault.sink is not None and fault.sink == (inst, pin)
                and net == fault.net):
            # The faulted branch feeds this observation point directly.
            bad_obs = fault.value
        if inst == PORT and fault.sink == (PORT, pin) \
                and net == fault.net:
            bad_obs = fault.value
        if good_obs != bad_obs:
            return True
    return False


@st.composite
def small_profiles(draw):
    return CircuitProfile(
        name="ppsfp",
        n_inputs=draw(st.integers(min_value=3, max_value=8)),
        n_outputs=draw(st.integers(min_value=3, max_value=8)),
        n_flip_flops=draw(st.integers(min_value=4, max_value=12)),
        n_gates=draw(st.integers(min_value=20, max_value=90)),
        clocks=(ClockSpec("clk", 5000.0, 1.0),),
        hard_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
        datapath_fraction=draw(st.floats(min_value=0.0, max_value=0.3)),
    )


@given(small_profiles(),
       st.integers(min_value=0, max_value=2 ** 16),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=10, deadline=None)
def test_ppsfp_equals_naive_single_fault_resimulation(profile, seed,
                                                      pattern_seed):
    circuit = generate(profile, cmos130(), seed=seed)
    view = extract_comb_view(circuit, "test")
    n_patterns = 6
    sim = BitSimulator(view, width=n_patterns)
    fsim = FaultSimulator(sim)

    rng = random.Random(pattern_seed)
    patterns = [
        {net: rng.getrandbits(1) for net in view.input_nets}
        for _ in range(n_patterns)
    ]
    words = sim.patterns_to_words(patterns)

    fault_list = build_fault_list(circuit, view)
    faults = [f for f in fault_list.faults if fsim.in_view(f)]
    detections = fsim.run_block(words, faults)

    for fault in faults:
        ppsfp_word = detections.get(fault, 0)
        naive_word = 0
        for i, pattern in enumerate(patterns):
            if naive_detected(view, pattern, fault):
                naive_word |= 1 << i
        assert ppsfp_word == naive_word, (
            f"{fault}: PPSFP {ppsfp_word:0{n_patterns}b} != "
            f"naive {naive_word:0{n_patterns}b}"
        )


# ----------------------------------------------------------------------
# Config fingerprint properties
# ----------------------------------------------------------------------
def _flow_config_from(kwargs, order):
    """Build a FlowConfig passing kwargs in the given order."""
    shuffled = {key: kwargs[key] for key in order}
    return FlowConfig(**shuffled)


@given(
    st.floats(min_value=0.0, max_value=5.0),
    st.integers(min_value=1, max_value=200),
    st.lists(st.sampled_from(["n1", "n2", "n3", "n4", "n5"]),
             max_size=5),
    st.randoms(use_true_random=False),
)
@settings(max_examples=25, deadline=None)
def test_fingerprint_stable_across_field_order(tp, seed, nets, rnd):
    kwargs = dict(
        tp_percent=tp,
        atpg=AtpgConfig(seed=seed),
        exclude_nets=frozenset(nets),
        detailed_passes=1,
    )
    order = list(kwargs)
    reference = config_fingerprint(_flow_config_from(kwargs, order))
    rnd.shuffle(order)
    assert config_fingerprint(_flow_config_from(kwargs, order)) == reference
    # Set construction order is irrelevant too.
    reversed_nets = FlowConfig(
        tp_percent=tp, atpg=AtpgConfig(seed=seed),
        exclude_nets=frozenset(reversed(nets)), detailed_passes=1,
    )
    assert config_fingerprint(reversed_nets) == reference


@given(st.dictionaries(st.sampled_from("abcdef"),
                       st.integers(min_value=0, max_value=9),
                       min_size=2, max_size=6),
       st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_fingerprint_ignores_dict_insertion_order(mapping, rnd):
    items = list(mapping.items())
    rnd.shuffle(items)
    assert config_fingerprint(dict(items)) == config_fingerprint(mapping)


@given(
    st.tuples(st.floats(min_value=0.0, max_value=5.0),
              st.integers(min_value=1, max_value=50)),
    st.tuples(st.floats(min_value=0.0, max_value=5.0),
              st.integers(min_value=1, max_value=50)),
)
@settings(max_examples=50, deadline=None)
def test_fingerprint_distinct_for_distinct_configs(a, b):
    config_a = FlowConfig(tp_percent=a[0], atpg=AtpgConfig(seed=a[1]))
    config_b = FlowConfig(tp_percent=b[0], atpg=AtpgConfig(seed=b[1]))
    if config_a == config_b:
        assert config_fingerprint(config_a) == config_fingerprint(config_b)
    else:
        assert config_fingerprint(config_a) != config_fingerprint(config_b)
