"""Tests for the netlist data model (Circuit / Net / Instance)."""

import pytest

from repro.netlist import Circuit, PORT, validate


def test_basic_construction(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_input("b")
    c.add_net("n1")
    c.add_instance("g", lib["NAND2_X1"], {"A": "a", "B": "b", "Z": "n1"})
    c.add_output("y", "n1")
    assert c.nets["n1"].driver == ("g", "Z")
    assert ("g", "A") in c.nets["a"].sinks
    assert c.output_net("y") == "n1"
    assert validate(c).ok


def test_duplicate_names_rejected(lib):
    c = Circuit("t")
    c.add_input("a")
    with pytest.raises(ValueError):
        c.add_net("a")
    c.add_net("n1")
    c.add_instance("g", lib["INV_X1"], {"A": "a", "Z": "n1"})
    with pytest.raises(ValueError):
        c.add_instance("g", lib["INV_X1"], {})


def test_double_driver_rejected(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_net("n1")
    c.add_instance("g1", lib["INV_X1"], {"A": "a", "Z": "n1"})
    with pytest.raises(ValueError):
        c.add_instance("g2", lib["INV_X1"], {"A": "a", "Z": "n1"})


def test_unknown_pin_rejected(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_net("n1")
    with pytest.raises(KeyError):
        c.add_instance("g", lib["INV_X1"], {"IN": "a", "Z": "n1"})


def test_disconnect_and_remove(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_net("n1")
    c.add_instance("g", lib["INV_X1"], {"A": "a", "Z": "n1"})
    assert c.disconnect("g", "A") == "a"
    assert c.nets["a"].sinks == []
    c.remove_instance("g")
    assert "g" not in c.instances
    assert c.nets["n1"].driver is None
    c.remove_net("n1")
    assert "n1" not in c.nets


def test_remove_connected_net_rejected(lib):
    c = Circuit("t")
    c.add_input("a")
    with pytest.raises(ValueError):
        c.remove_net("a")


def test_split_net_moves_selected_sinks(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_net("n1")
    c.add_instance("g0", lib["INV_X1"], {"A": "a", "Z": "n1"})
    for i in range(3):
        c.add_net(f"o{i}")
        c.add_instance(f"g{i + 1}", lib["INV_X1"],
                       {"A": "n1", "Z": f"o{i}"})
    c.add_output("y", "o0")
    moved = [("g2", "A"), ("g3", "A")]
    new_net = c.split_net_before_sinks("n1", moved)
    assert sorted(new_net.sinks) == sorted(moved)
    assert c.nets["n1"].sinks == [("g1", "A")]
    assert c.instances["g2"].conns["A"] == new_net.name
    # New net is undriven until the caller adds a driver.
    report = validate(c)
    assert any("no driver" in e for e in report.errors)


def test_split_net_moves_output_ports(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_net("n1")
    c.add_instance("g0", lib["INV_X1"], {"A": "a", "Z": "n1"})
    c.add_output("y", "n1")
    new_net = c.split_net_before_sinks("n1", [(PORT, "y")])
    assert c.output_net("y") == new_net.name


def test_swap_cell_checks_pins(lib):
    c = Circuit("t")
    c.add_clock("clk", 1000.0)
    c.add_input("d")
    c.add_net("q")
    c.add_instance("ff", lib["DFF_X1"], {"D": "d", "CLK": "clk", "Q": "q"})
    c.add_output("y", "q")
    c.swap_cell("ff", lib["SDFF_X1"])
    assert c.instances["ff"].cell.name == "SDFF_X1"
    # INV has no D pin: must be rejected.
    with pytest.raises(ValueError):
        c.swap_cell("ff", lib["INV_X1"])


def test_clone_is_independent(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_net("n1")
    c.add_instance("g", lib["INV_X1"], {"A": "a", "Z": "n1"})
    c.add_output("y", "n1")
    dup = c.clone("t2")
    dup.remove_instance("g")
    assert "g" in c.instances
    assert c.nets["n1"].driver == ("g", "Z")


def test_stats_and_helpers(lib, tiny_pipeline):
    stats = tiny_pipeline.stats()
    assert stats["flip_flops"] == 2
    assert stats["combinational"] == 2
    assert tiny_pipeline.clock_of("ff1") == "clk"
    assert tiny_pipeline.clock_period_ps("clk") == 4000.0
    with pytest.raises(KeyError):
        tiny_pipeline.clock_period_ps("nope")
    area = tiny_pipeline.total_cell_area()
    assert area > 0


def test_validate_catches_unconnected_pin(lib):
    c = Circuit("t")
    c.add_input("a")
    c.add_net("n1")
    c.add_instance("g", lib["NAND2_X1"], {"A": "a", "Z": "n1"})
    report = validate(c)
    assert any("g.B" in e for e in report.errors)


def test_validate_catches_bad_clock_hookup(lib):
    c = Circuit("t")
    c.add_input("notclock")
    c.add_input("d")
    c.add_net("q")
    c.add_instance("ff", lib["DFF_X1"],
                   {"D": "d", "CLK": "notclock", "Q": "q"})
    c.add_output("y", "q")
    report = validate(c)
    assert any("clock pin" in e for e in report.errors)
