"""End-to-end test of the Section 5 timing-aware TPI mitigation."""

import pytest

from repro.circuits import s38417_like
from repro.core import FlowConfig, run_flow
from repro.library import cmos130
from repro.tpi import critical_nets


@pytest.fixture(scope="module")
def baseline():
    return run_flow(s38417_like(scale=0.04), cmos130(), FlowConfig(
        tp_percent=0.0, run_atpg_phase=False,
    ))


def test_exclusion_set_from_real_paths(baseline):
    paths = baseline.sta.all_paths()
    assert paths
    worst = baseline.sta.worst_path()
    # A threshold just above worst slack picks up at least that path.
    excluded = critical_nets(paths, worst.slack_ps + 1.0)
    assert excluded >= set(worst.nets)


def test_timing_aware_flow_respects_exclusions(baseline):
    worst = baseline.sta.worst_path()
    threshold = worst.slack_ps + max(200.0, 0.2 * worst.total_ps)
    excluded = frozenset(critical_nets(
        baseline.sta.all_paths(), threshold,
    ))
    aware = run_flow(s38417_like(scale=0.04), cmos130(), FlowConfig(
        tp_percent=3.0, exclude_nets=excluded, run_atpg_phase=False,
    ))
    assert aware.tpi is not None and aware.tpi.count >= 1
    for record in aware.tpi.inserted:
        assert record.net not in excluded


def test_unconstrained_flow_may_slow_critical_path(baseline):
    """TPI moves/extends critical paths (paper: 'new paths become
    critical'); the flow must report the decomposition regardless."""
    run = run_flow(s38417_like(scale=0.04), cmos130(), FlowConfig(
        tp_percent=5.0, run_atpg_phase=False,
    ))
    path = run.sta.worst_path()
    base_path = baseline.sta.worst_path()
    # Direction: adding TSFFs never speeds the design up materially.
    assert path.total_ps >= 0.9 * base_path.total_ps
    # Slow nodes are reported, not fixed (Section 4.4).
    assert isinstance(run.sta.slow_nodes, set)
