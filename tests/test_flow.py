"""Integration tests for the full Figure 2 flow and the experiment
sweep."""

import pytest

from repro.circuits import s38417_like
from repro.core import (
    ExperimentConfig,
    FlowConfig,
    ascii_density,
    format_table1,
    format_table2,
    format_table3,
    render_svg,
    run_experiment,
    run_flow,
)
from repro.atpg import AtpgConfig
from repro.layout import get_placer
from repro.netlist import validate


@pytest.fixture(scope="module")
def flow_result(lib):
    circuit = s38417_like(scale=0.03)
    config = FlowConfig(
        tp_percent=2.0,
        atpg=AtpgConfig(seed=3, backtrack_limit=32,
                        max_deterministic=250),
    )
    from repro.library import cmos130
    return run_flow(circuit, cmos130(), config)


def test_flow_produces_all_artifacts(flow_result):
    r = flow_result
    assert r.chains is not None and r.chains.n_chains >= 1
    assert r.plan is not None and r.placement is not None
    assert r.clock_trees and r.filler is not None
    assert r.congestion is not None and r.parasitics
    assert r.sta is not None and r.atpg is not None
    assert validate(r.circuit).ok


def test_flow_tables(flow_result):
    m = flow_result.test_metrics()
    assert m.n_test_points >= 1
    assert 0.80 <= m.fault_coverage <= 1.0
    assert m.n_patterns > 0
    a = flow_result.area_metrics()
    assert a["chip_area_um2"] > a["core_area_um2"]
    assert 0 <= a["filler_fraction"] < 0.6


def test_flow_timing_sane(flow_result):
    sta = flow_result.sta
    path = sta.critical("clk")
    assert path is not None
    assert path.total_ps > 0
    assert path.t_setup_ps > 0
    assert sta.hold_violations == 0  # hold-fix ECO ran
    total = (path.t_wires_ps + path.t_intrinsic_ps + path.t_load_dep_ps
             + path.t_setup_ps + path.t_skew_ps)
    assert path.total_ps == pytest.approx(total)


def test_flow_stage_timings_recorded(flow_result):
    stages = flow_result.stage_seconds
    for key in ("tpi_scan", "floorplan_place", "scan_reorder",
                "eco_cts_route", "extraction", "sta", "atpg"):
        assert key in stages


def test_render_views(flow_result):
    r = flow_result
    svg = render_svg(r.circuit, r.plan, r.placement, r.routed, "routed")
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "line" in svg  # wires drawn
    svg_fp = render_svg(r.circuit, r.plan, stage="floorplan")
    assert "line" not in svg_fp
    with pytest.raises(ValueError):
        render_svg(r.circuit, r.plan, stage="nope")
    density = ascii_density(r.circuit, r.placement)
    assert len(density.splitlines()) >= 4


# ----------------------------------------------------------------------
# Hold-fix ECO
# ----------------------------------------------------------------------
class _StubSta:
    """Bare minimum of StaResult that _fix_hold_violations reads."""

    def __init__(self, hold_slacks):
        self.hold_slacks = hold_slacks


def _seq_endpoint(circuit):
    """A sequential instance with a connected data pin."""
    for name, inst in sorted(circuit.instances.items()):
        seq = inst.cell.sequential
        if seq is not None and inst.conns.get(seq.data_pin):
            return name
    raise AssertionError("no sequential endpoint found")


@pytest.fixture(scope="module")
def hold_fix_flow():
    """A small placed layout to exercise the hold-fix ECO against."""
    from repro.library import cmos130
    circuit = s38417_like(scale=0.02)
    config = FlowConfig(tp_percent=0.0, run_atpg_phase=False,
                        atpg=AtpgConfig(seed=3))
    return run_flow(circuit, cmos130(), config)


def test_hold_fix_rounds_census_is_consistent(flow_result):
    for fix in flow_result.hold_fix_rounds:
        assert fix.violations_before >= 1
        assert 0 <= fix.buffers_inserted <= fix.budget
        assert fix.budget_left == fix.budget - fix.buffers_inserted


def test_fix_hold_violations_budget_exhaustion(hold_fix_flow, monkeypatch):
    """Full rows -> zero budget -> no insertions, netlist untouched."""
    from repro.core.flow import _fix_hold_violations

    r = hold_fix_flow
    placement = r.placement
    monkeypatch.setattr(
        placement, "row_occupancy_sites",
        lambda circuit: [row.n_sites for row in placement.plan.rows],
    )
    endpoint = _seq_endpoint(r.circuit)
    before = len(r.circuit.instances)
    from repro.library import cmos130
    fix = _fix_hold_violations(r.circuit, cmos130(), placement,
                               _StubSta({endpoint: -80.0}),
                               get_placer("quadratic"))
    assert fix.budget == 0
    assert fix.buffers_inserted == 0
    assert fix.budget_left == 0
    assert fix.violations_before == 1
    assert len(r.circuit.instances) == before


def test_fix_hold_violations_inserts_within_budget(hold_fix_flow,
                                                   monkeypatch):
    from repro.core.flow import _fix_hold_violations

    r = hold_fix_flow
    placement = r.placement
    # The finished flow's fillers occupy all whitespace; report
    # half-empty rows so the ECO has a budget to spend.
    monkeypatch.setattr(
        placement, "row_occupancy_sites",
        lambda circuit: [row.n_sites // 2 for row in placement.plan.rows],
    )
    endpoint = _seq_endpoint(r.circuit)
    before = len(r.circuit.instances)
    from repro.library import cmos130
    fix = _fix_hold_violations(r.circuit, cmos130(), placement,
                               _StubSta({endpoint: -50.0}),
                               get_placer("quadratic"), round_no=2)
    assert fix.round == 2
    assert fix.violations_before == 1
    assert fix.buffers_inserted >= 1
    assert fix.budget_left == fix.budget - fix.buffers_inserted
    assert len(r.circuit.instances) == before + fix.buffers_inserted


def test_hold_fix_loop_breaks_on_exhausted_budget(monkeypatch):
    """A zero-insertion round ends the ECO loop with violations left."""
    from repro.core import flow as flow_mod
    from repro.library import cmos130

    calls = []

    def exhausted_fix(circuit, library, placement, sta, placer,
                      round_no=1):
        calls.append(round_no)
        return flow_mod.HoldFixRound(
            round=round_no, violations_before=len(sta.hold_slacks),
            buffers_inserted=0, budget=0, budget_left=0,
        )

    real_run_sta = flow_mod.run_sta
    real_run_sta_with_state = flow_mod.run_sta_with_state

    def sta_with_violation(circuit, parasitics, config):
        res = real_run_sta(circuit, parasitics, config)
        res.hold_slacks = {"fake_ff": -10.0}
        res.hold_violations = 1
        return res

    def sta_state_with_violation(circuit, parasitics, config):
        res, state = real_run_sta_with_state(circuit, parasitics, config)
        res.hold_slacks = {"fake_ff": -10.0}
        res.hold_violations = 1
        return res, state

    monkeypatch.setattr(flow_mod, "_fix_hold_violations", exhausted_fix)
    monkeypatch.setattr(flow_mod, "run_sta", sta_with_violation)
    monkeypatch.setattr(flow_mod, "run_sta_with_state",
                        sta_state_with_violation)
    result = run_flow(s38417_like(scale=0.015), cmos130(),
                      FlowConfig(tp_percent=0.0, run_atpg_phase=False))
    assert calls == [1]  # the loop broke after the exhausted round
    assert result.hold_fix_rounds == [flow_mod.HoldFixRound(
        round=1, violations_before=1, buffers_inserted=0,
        budget=0, budget_left=0,
    )]
    assert result.sta.hold_violations == 1  # reported, not hidden


def test_experiment_sweep_and_formatting(lib):
    config = ExperimentConfig(
        name="mini",
        circuit_factory=lambda: s38417_like(scale=0.02),
        tp_percents=(0.0, 3.0),
        flow=FlowConfig(
            atpg=AtpgConfig(seed=1, backtrack_limit=24,
                            max_deterministic=150),
        ),
    )
    result = run_experiment(config)
    rows1 = result.table1_rows()
    assert [r["tp_percent"] for r in rows1] == [0.0, 3.0]
    assert rows1[0]["n_tp"] == 0 and rows1[1]["n_tp"] >= 1
    assert rows1[0]["patterns_dec_percent"] == 0.0
    rows2 = result.table2_rows()
    assert rows2[0]["core_inc_percent"] == 0.0
    assert rows2[1]["n_cells"] > rows2[0]["n_cells"]
    rows3 = result.table3_rows()
    assert {r["domain"] for r in rows3} == {"clk"}
    # Formatting produces aligned headers.
    for rows, fmt in ((rows1, format_table1), (rows2, format_table2),
                      (rows3, format_table3)):
        text = fmt(rows)
        lines = text.splitlines()
        assert len(lines) == len(rows) + 2
        assert len(set(len(l) for l in lines)) == 1
