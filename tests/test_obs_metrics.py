"""Tests for the metrics registry: bucket semantics, labels, merge,
and the free-when-off null path.

The load-bearing contract is Prometheus ``le`` semantics: the bucket
labelled ``le=x`` counts every observation ``<= x`` (boundary
*inclusive*), 0 lands in the first bucket, ``inf`` in the implicit
``+Inf`` bucket, and cumulative rendering never decreases.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    _NULL_INSTRUMENT,
    log_buckets,
)


# ----------------------------------------------------------------------
# Bucket construction
# ----------------------------------------------------------------------
def test_log_buckets_are_geometric():
    bounds = log_buckets(start=0.001, factor=2.0, count=5)
    assert bounds == (0.001, 0.002, 0.004, 0.008, 0.016)


def test_log_buckets_reject_bad_parameters():
    with pytest.raises(ValueError):
        log_buckets(start=0)
    with pytest.raises(ValueError):
        log_buckets(factor=1.0)
    with pytest.raises(ValueError):
        log_buckets(count=0)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram([])
    with pytest.raises(ValueError):
        Histogram([1.0, 1.0])  # not strictly increasing
    with pytest.raises(ValueError):
        Histogram([1.0, float("inf")])  # +Inf is implicit


# ----------------------------------------------------------------------
# Boundary semantics: 0, inf, and exact bucket edges
# ----------------------------------------------------------------------
def test_histogram_boundary_edge_cases():
    h = Histogram([1.0, 2.0])
    h.observe(0.0)    # below everything -> first bucket
    h.observe(1.0)    # exactly on a bound -> that bound's bucket (<=)
    h.observe(1.5)    # between bounds -> second bucket
    h.observe(2.0)    # exactly on the last bound -> still le=2
    h.observe(3.0)    # past the last bound -> implicit +Inf
    h.observe(float("inf"))
    assert h.bucket_counts == [2, 2, 2]
    assert h.count == 6
    assert h.sum == float("inf")


def test_histogram_cumulative_ends_at_count():
    h = Histogram([0.5, 1.0])
    for v in (0.2, 0.5, 0.9, 5.0):
        h.observe(v)
    cum = h.cumulative()
    assert cum == [(0.5, 2), (1.0, 3), (float("inf"), 4)]
    assert cum[-1][1] == h.count
    # cumulative counts never decrease
    assert all(b >= a for (_, a), (_, b) in zip(cum, cum[1:]))


def test_counter_rejects_negative_and_gauge_does_not():
    c = Counter()
    c.inc(2)
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 2
    g = Gauge()
    g.set(-3.5)
    g.inc(-1)
    assert g.value == -4.5


# ----------------------------------------------------------------------
# Registry behaviour
# ----------------------------------------------------------------------
def test_registry_series_split_by_labels():
    reg = obs.MetricsRegistry()
    reg.inc("cells", 1, circuit="a")
    reg.inc("cells", 2, circuit="b")
    reg.inc("cells", 3, circuit="a")
    fam = reg.get("cells")
    assert fam.kind == "counter"
    assert {dict(k)["circuit"]: v.value
            for k, v in fam.series.items()} == {"a": 4.0, "b": 2.0}


def test_registry_kind_conflict_raises():
    reg = obs.MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")
    reg.describe("y", "histogram")
    with pytest.raises(ValueError):
        reg.describe("y", "counter")


def test_describe_attaches_help_without_creating_series():
    reg = obs.MetricsRegistry()
    reg.describe("latency", "histogram", "How slow.", buckets=(1.0, 2.0))
    fam = reg.get("latency")
    assert fam.help == "How slow."
    assert fam.series == {}
    reg.observe("latency", 1.5)
    assert reg.get("latency").series  # first observation lands
    assert reg.histogram("latency").bounds == (1.0, 2.0)


def test_registry_merge_adds_counters_and_histograms():
    a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
    a.inc("n", 1)
    b.inc("n", 2)
    a.observe("h", 0.5, buckets=(1.0,))
    b.observe("h", 5.0, buckets=(1.0,))
    a.set("g", 1.0)
    b.set("g", 9.0)
    a.merge(b)
    assert a.counter("n").value == 3.0
    h = a.histogram("h", buckets=(1.0,))
    assert h.count == 2 and h.bucket_counts == [1, 1]
    assert a.gauge("g").value == 9.0  # latest-write-wins


def test_registry_merge_rejects_bucket_mismatch():
    a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
    a.observe("h", 0.5, buckets=(1.0,))
    b.observe("h", 0.5, buckets=(2.0,))
    with pytest.raises(ValueError):
        a.merge(b)


def test_families_are_sorted_by_name():
    reg = obs.MetricsRegistry()
    for name in ("zed", "alpha", "mid"):
        reg.inc(name)
    assert [f.name for f in reg.families()] == ["alpha", "mid", "zed"]


# ----------------------------------------------------------------------
# Free-when-off invariant
# ----------------------------------------------------------------------
def test_null_registry_is_the_default_and_shared():
    assert not obs.metrics_active()
    reg = obs.get_registry()
    assert reg is obs.NULL_REGISTRY
    # Every accessor hands back the one shared null instrument: no
    # allocation per call site when metrics are off.
    assert reg.counter("a", x="1") is _NULL_INSTRUMENT
    assert reg.gauge("b") is _NULL_INSTRUMENT
    assert reg.histogram("c") is _NULL_INSTRUMENT
    reg.inc("a")
    reg.observe("c", 1.0)
    assert list(reg.families()) == []
    # module-level helpers are no-ops too
    obs.inc("anything", 5, stage="x")
    obs.observe("anything_else", 1.0)
    obs.set_gauge("g", 2.0)
    assert obs.get_registry().get("anything") is None


def test_install_registry_scopes_and_restores():
    reg = obs.MetricsRegistry()
    previous = obs.install_registry(reg)
    try:
        assert obs.metrics_active()
        obs.inc("hits", 2, kind="test")
        assert reg.counter("hits", kind="test").value == 2.0
    finally:
        obs.install_registry(previous)
    assert not obs.metrics_active()
