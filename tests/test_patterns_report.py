"""Tests for pattern interchange and timing reports."""

import pytest

from repro.atpg import AtpgConfig, run_atpg
from repro.atpg.patterns import (
    from_pattern_text,
    scan_load_schedule,
    to_pattern_text,
)
from repro.scan import insert_scan
from repro.sta.report import format_path, format_summary, worst_paths_report


@pytest.fixture(scope="module")
def atpg_env():
    from repro.circuits import s38417_like
    from repro.library import cmos130
    c = s38417_like(scale=0.015)
    chains = insert_scan(c, cmos130(), max_chain_length=30)
    res = run_atpg(c, config=AtpgConfig(
        seed=4, backtrack_limit=24, max_deterministic=150,
    ))
    return c, chains, res


def test_pattern_text_round_trip(atpg_env):
    c, chains, res = atpg_env
    text = to_pattern_text(res, c.name)
    inputs, patterns = from_pattern_text(text)
    assert inputs == res.input_nets
    assert patterns == res.patterns


def test_pattern_text_errors():
    with pytest.raises(ValueError):
        from_pattern_text("0101\n")
    with pytest.raises(ValueError):
        from_pattern_text("inputs a b\n0\n")
    with pytest.raises(ValueError):
        from_pattern_text("inputs a b\n0x\n")


def test_scan_load_schedule_shapes(atpg_env):
    c, chains, res = atpg_env
    q_net_of = {
        name: c.instances[name].conns["Q"]
        for chain in chains.chains for name in chain
    }
    schedule = scan_load_schedule(
        res.patterns[:5], res.input_nets, chains.chains, q_net_of,
    )
    assert len(schedule) == 5
    for per_chain in schedule:
        assert len(per_chain) == chains.n_chains
        for chain, bits in zip(chains.chains, per_chain):
            assert len(bits) == len(chain)
            assert set(bits) <= {"0", "1"}


def test_scan_load_targets_correct_cells(atpg_env):
    """Shifting the schedule leaves each FF holding its pattern bit."""
    c, chains, res = atpg_env
    q_net_of = {
        name: c.instances[name].conns["Q"]
        for chain in chains.chains for name in chain
    }
    index = {net: j for j, net in enumerate(res.input_nets)}
    pattern = res.patterns[0]
    schedule = scan_load_schedule(
        [pattern], res.input_nets, chains.chains, q_net_of,
    )[0]
    for chain, stream in zip(chains.chains, schedule):
        # After len(chain) shifts, bit k of the stream sits in FF
        # chain[len(chain)-1-k].
        for k, bit in enumerate(stream):
            ff = chain[len(chain) - 1 - k]
            j = index[q_net_of[ff]]
            assert bit == ("1" if (pattern >> j) & 1 else "0")


def test_timing_report_formatting(lib, tiny_pipeline):
    from repro.extraction import extract_all
    from repro.layout import GlobalRouter, build_floorplan, global_place
    from repro.sta import StaConfig, run_sta

    plan = build_floorplan(tiny_pipeline, 0.5)
    placement = global_place(tiny_pipeline, plan)
    router = GlobalRouter(tiny_pipeline, placement)
    router.route_all()
    parasitics = extract_all(tiny_pipeline, placement, router.routed)
    result = run_sta(tiny_pipeline, parasitics, StaConfig(derate=1.0))

    path = result.critical("clk")
    block = format_path(path, period_ps=4000.0)
    assert "Startpoint: ff1" in block
    assert "T_cp (eq. 3)" in block
    assert "slack" in block

    summary = format_summary(result)
    assert "clk" in summary and "F_max" in summary

    report = worst_paths_report(result, count=2)
    assert report.count("Startpoint") >= 1
