"""Tests for the Prometheus text exposition encoder and validator.

Round-trip property: anything :func:`repro.obs.render_registry` emits
must pass :func:`repro.obs.validate_exposition` with zero problems —
CI scrapes the live daemon and lints the text with the same validator,
so these tests pin the contract both sides share.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.promtext import render_registry, validate_exposition


def _registry() -> obs.MetricsRegistry:
    reg = obs.MetricsRegistry()
    reg.inc("repro_cells_total", 3, help="Cells done.",
            circuit="s38417", outcome="ok")
    reg.inc("repro_cells_total", 1, circuit="s38417", outcome="failed")
    reg.set("repro_queue_depth", 2, help="Queued jobs.")
    for v in (0.0005, 0.003, 0.003, 5.0):
        reg.observe("repro_stage_seconds", v, help="Stage wall time.",
                    buckets=(0.001, 0.01, 1.0), stage="atpg")
    return reg


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def test_render_is_valid_exposition():
    text = render_registry(_registry())
    assert validate_exposition(text) == []


def test_render_is_deterministic():
    assert render_registry(_registry()) == render_registry(_registry())


def test_render_shapes():
    text = render_registry(_registry())
    assert "# HELP repro_cells_total Cells done." in text
    assert "# TYPE repro_cells_total counter" in text
    assert ('repro_cells_total{circuit="s38417",outcome="ok"} 3'
            in text)
    assert "# TYPE repro_stage_seconds histogram" in text
    # boundary-inclusive cumulative buckets: 0.0005<=0.001 -> 1;
    # two 0.003s land in le=0.01 -> 3; 5.0 only in +Inf -> 4.
    assert 'repro_stage_seconds_bucket{le="0.001",stage="atpg"} 1' in text
    assert 'repro_stage_seconds_bucket{le="0.01",stage="atpg"} 3' in text
    assert 'repro_stage_seconds_bucket{le="1",stage="atpg"} 3' in text
    assert 'repro_stage_seconds_bucket{le="+Inf",stage="atpg"} 4' in text
    assert 'repro_stage_seconds_count{stage="atpg"} 4' in text


def test_render_escapes_label_values_and_help():
    reg = obs.MetricsRegistry()
    reg.inc("m", 1, help='line1\nline2 \\ slash',
            label='quo"te\\back\nnl')
    text = render_registry(reg)
    assert validate_exposition(text) == []
    assert '# HELP m line1\\nline2 \\\\ slash' in text
    assert 'label="quo\\"te\\\\back\\nnl"' in text


def test_render_empty_family_is_type_only_and_valid():
    reg = obs.MetricsRegistry()
    reg.describe("repro_job_seconds", "histogram", "Job seconds.")
    text = render_registry(reg)
    assert "# TYPE repro_job_seconds histogram" in text
    assert "repro_job_seconds_bucket" not in text
    assert validate_exposition(text) == []


def test_render_rejects_invalid_names():
    reg = obs.MetricsRegistry()
    reg.inc("bad-name")
    with pytest.raises(ValueError):
        render_registry(reg)
    reg2 = obs.MetricsRegistry()
    reg2.inc("good_name", **{"0bad": "v"})
    with pytest.raises(ValueError):
        render_registry(reg2)


def test_render_special_float_values():
    reg = obs.MetricsRegistry()
    reg.set("g_inf", float("inf"))
    reg.set("g_neg", float("-inf"))
    reg.set("g_nan", float("nan"))
    text = render_registry(reg)
    assert "g_inf +Inf" in text
    assert "g_neg -Inf" in text
    assert "g_nan NaN" in text
    assert validate_exposition(text) == []


# ----------------------------------------------------------------------
# Validator rejection paths
# ----------------------------------------------------------------------
def test_validator_flags_bad_samples():
    assert validate_exposition("9metric 1\n")
    assert validate_exposition("metric one_point_five\n")
    assert validate_exposition('m{bad label="x"} 1\n')
    assert validate_exposition("# TYPE m flumph\nm 1\n")
    assert validate_exposition("# TYPE m counter\n# TYPE m counter\n")


def test_validator_flags_histogram_problems():
    # buckets out of le order
    out_of_order = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 2\n'
        'h_bucket{le="0.5"} 1\n'
        'h_bucket{le="+Inf"} 2\n'
        "h_sum 1\nh_count 2\n")
    assert any("le order" in p
               for p in validate_exposition(out_of_order))
    # cumulative counts decrease
    decreasing = (
        "# TYPE h histogram\n"
        'h_bucket{le="0.5"} 3\n'
        'h_bucket{le="+Inf"} 1\n'
        "h_sum 1\nh_count 1\n")
    assert any("decrease" in p for p in validate_exposition(decreasing))
    # missing +Inf
    no_inf = ("# TYPE h histogram\n"
              'h_bucket{le="0.5"} 1\n'
              "h_sum 1\nh_count 1\n")
    assert any("+Inf" in p for p in validate_exposition(no_inf))
    # +Inf bucket != _count
    mismatch = (
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 2\n'
        "h_sum 1\nh_count 5\n")
    assert any("_count" in p for p in validate_exposition(mismatch))


def test_validator_accepts_plain_untyped_samples():
    assert validate_exposition("free_metric 42\n") == []
    assert validate_exposition("") == []
