"""Additional rendering coverage: cell colour classes and density."""

from repro.core.render import _cell_class, ascii_density, render_svg
from repro.layout import build_floorplan, global_place
from repro.scan import insert_scan
from repro.tpi import TpiConfig, insert_test_points


def test_cell_classes(lib, small_circuit_mutable):
    c = small_circuit_mutable
    insert_test_points(c, lib, TpiConfig(n_test_points=2))
    insert_scan(c, lib, max_chain_length=40)
    classes = {_cell_class(c, name) for name in c.instances}
    assert {"tsff", "ff", "comb"} <= classes


def test_tsffs_rendered_in_red(lib, small_circuit_mutable):
    c = small_circuit_mutable
    insert_test_points(c, lib, TpiConfig(n_test_points=2))
    insert_scan(c, lib, max_chain_length=40)
    plan = build_floorplan(c, 0.9)
    placement = global_place(c, plan)
    svg = render_svg(c, plan, placement, stage="placement")
    assert "#d62728" in svg  # the TSFF colour appears


def test_density_characters(lib, small_circuit):
    plan = build_floorplan(small_circuit, 0.9)
    placement = global_place(small_circuit, plan)
    density = ascii_density(small_circuit, placement, columns=32)
    rows = density.splitlines()
    assert all(len(r) == 32 for r in rows)
    allowed = set(".123456789#")
    assert set("".join(rows)) <= allowed
