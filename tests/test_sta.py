"""Tests for static timing analysis (delays, paths, skew, slow nodes)."""

import pytest

from repro.extraction import extract_all
from repro.layout import GlobalRouter, build_floorplan, global_place
from repro.netlist import Circuit
from repro.sta import (
    StaConfig,
    app_mode_arcs,
    build_timing_nodes,
    evaluate_arc,
    run_sta,
    wire_degraded_slew,
)


def _lay_out(circuit, util=0.5):
    plan = build_floorplan(circuit, util)
    placement = global_place(circuit, plan)
    router = GlobalRouter(circuit, placement)
    router.route_all()
    parasitics = extract_all(circuit, placement, router.routed)
    return parasitics


def test_evaluate_arc_decomposition(lib):
    arc = lib["NAND2_X1"].arc("A", "Z")
    ad = evaluate_arc(arc, input_slew_ps=60.0, load_ff=20.0, derate=1.0)
    assert ad.delay_ps == pytest.approx(
        ad.intrinsic_ps + ad.load_dependent_ps
    )
    assert ad.intrinsic_ps == pytest.approx(
        arc.delay.intrinsic_ps(), rel=1e-9
    )
    derated = evaluate_arc(arc, 60.0, 20.0, derate=1.25)
    assert derated.delay_ps == pytest.approx(1.25 * ad.delay_ps)


def test_slow_node_flagging(lib):
    arc = lib["INV_X1"].arc("A", "Z")
    ok = evaluate_arc(arc, 60.0, 20.0)
    assert not ok.extrapolated
    slow = evaluate_arc(arc, 60.0, arc.delay.max_load * 3)
    assert slow.extrapolated


def test_wire_degraded_slew_monotone():
    assert wire_degraded_slew(100.0, 0.0) == pytest.approx(100.0)
    assert wire_degraded_slew(100.0, 50.0) > 100.0


def test_app_mode_arcs_block_test_paths(lib):
    tsff_arcs = {(a.from_pin, a.to_pin) for a in app_mode_arcs(lib["TSFF_X1"])}
    assert tsff_arcs == {("D", "Q")}
    sdff_arcs = {(a.from_pin, a.to_pin) for a in app_mode_arcs(lib["SDFF_X1"])}
    assert sdff_arcs == {("CLK", "Q")}


def test_pipeline_path_decomposition(lib, tiny_pipeline):
    parasitics = _lay_out(tiny_pipeline)
    result = run_sta(tiny_pipeline, parasitics,
                     StaConfig(derate=1.0, input_slew_ps=40.0))
    path = result.critical("clk")
    assert path is not None
    # Worst register-to-register path: ff1 -> g2 -> ff2.
    assert path.endpoint == "ff2"
    assert path.startpoint == "ff1"
    total = (
        path.t_wires_ps + path.t_intrinsic_ps + path.t_load_dep_ps
        + path.t_setup_ps + path.t_skew_ps
    )
    assert path.total_ps == pytest.approx(total)  # eq. (3)
    assert path.t_setup_ps == pytest.approx(
        lib["DFF_X1"].sequential.setup_ps
    )
    assert path.slack_ps == pytest.approx(4000.0 - path.total_ps)
    assert path.fmax_mhz == pytest.approx(1e6 / path.total_ps)
    assert path.n_test_points == 0


def test_timing_nodes_topological(lib, small_circuit):
    nodes = build_timing_nodes(small_circuit)
    known = set(small_circuit.inputs)
    launches = {n.out_net for n in nodes if n.is_launch}
    known |= launches  # launch outputs break the cycle through FFs
    for node in nodes:
        if node.is_launch:
            continue
        for arc in node.arcs:
            net = node.inst.conns[arc.from_pin]
            assert net in known or net in launches
        known.add(node.out_net)


def test_tsff_lengthens_paths(lib):
    """Inserting a TSFF on the pipeline's data net slows the path."""
    def build(with_tp):
        c = Circuit("t")
        c.add_clock("clk", 4000.0)
        c.add_input("a")
        c.add_net("q1")
        c.add_instance("ff1", lib["DFF_X1"],
                       {"D": "a", "CLK": "clk", "Q": "q1"})
        c.add_net("n1")
        c.add_instance("g", lib["INV_X1"], {"A": "q1", "Z": "n1"})
        end_net = "n1"
        if with_tp:
            c.add_input("se")
            c.add_input("tr")
            c.add_net("tpq")
            c.add_instance("tp", lib["TSFF_X1"], {
                "D": "n1", "TI": "a", "TE": "se", "TR": "tr",
                "CLK": "clk", "Q": "tpq",
            })
            end_net = "tpq"
        c.add_net("q2")
        c.add_instance("ff2", lib["DFF_X1"],
                       {"D": end_net, "CLK": "clk", "Q": "q2"})
        c.add_output("po", "q2")
        return c

    base = build(False)
    tp = build(True)
    sta_base = run_sta(base, _lay_out(base), StaConfig(derate=1.0))
    sta_tp = run_sta(tp, _lay_out(tp), StaConfig(derate=1.0))
    p_base = sta_base.critical("clk")
    p_tp = sta_tp.critical("clk")
    assert p_tp.total_ps > p_base.total_ps + 100.0  # >= two mux delays
    assert p_tp.n_test_points == 1


def test_multi_domain_paths_split(lib):
    from repro.circuits import control_core
    c = control_core(scale=0.04)
    from repro.scan import insert_scan
    insert_scan(c, lib, max_chain_length=50)
    from repro.netlist.fanout import fix_electrical
    fix_electrical(c, lib)
    from repro.layout.cts import synthesize_all_clock_trees
    plan = build_floorplan(c, 0.97)
    placement = global_place(c, plan)
    from repro.layout.eco import eco_place
    trees = synthesize_all_clock_trees(c, lib, dict(placement.positions))
    new = [b for t in trees for b in t.buffers]
    hints = {}
    for t in trees:
        hints.update(t.buffer_positions)
    eco_place(c, placement, new, hints=hints)
    router = GlobalRouter(c, placement)
    router.route_all()
    parasitics = extract_all(c, placement, router.routed)
    result = run_sta(c, parasitics)
    assert set(result.paths) <= {"clk8", "clk64"}
    for domain, paths in result.paths.items():
        for p in paths:
            assert p.domain == domain
