"""Tests for the netlist/DFT rule pack and its flow/CLI gates."""

import pytest

import repro
from repro import api, cli
from repro.core import flow as flow_mod
from repro.core.flow import FlowConfig, run_flow
from repro.lint import LintError
from repro.lint.netlist_rules import lint_netlist, structural_rules
from repro.netlist import Circuit, validate
from repro.scan import insert_scan


def _rule_ids(report):
    return {d.rule_id for d in report.diagnostics}


def _loop_circuit(lib):
    """Two inverters in a combinational cycle."""
    c = Circuit("looped")
    c.add_net("n1")
    c.add_net("n2")
    c.add_instance("inv_a", lib["INV_X1"], {"A": "n1", "Z": "n2"})
    c.add_instance("inv_b", lib["INV_X1"], {"A": "n2", "Z": "n1"})
    return c


def _scan_circuit(lib, small_circuit_mutable):
    circuit = small_circuit_mutable
    chains = insert_scan(circuit, lib, max_chain_length=100)
    return circuit, chains


# ---------------------------------------------------------------------------
# Pathological circuits


def test_combinational_loop_detected(lib):
    report = lint_netlist(_loop_circuit(lib))
    assert "DFT001" in _rule_ids(report)
    assert not report.ok
    msg = next(d for d in report.diagnostics if d.rule_id == "DFT001")
    assert "combinational loop" in msg.message


def test_multi_driven_net_detected(lib):
    c = Circuit("shorted")
    c.add_input("a")
    c.add_net("n1")
    c.add_instance("inv_a", lib["INV_X1"], {"A": "a", "Z": "n1"})
    rogue = c.add_instance("inv_b", lib["INV_X1"], {"A": "a"})
    # Circuit.connect refuses a second driver, so corrupt the pin map
    # directly -- exactly the torn-rewrite shape NL002 exists for.
    rogue.conns["Z"] = "n1"
    report = lint_netlist(c)
    assert "NL002" in _rule_ids(report)
    msg = next(d for d in report.diagnostics if d.rule_id == "NL002")
    assert "inv_a.Z" in msg.message and "inv_b.Z" in msg.message


def test_scan_chain_cut_detected(lib, small_circuit_mutable):
    circuit, chains = _scan_circuit(lib, small_circuit_mutable)
    victim = next(
        (chain[1] for chain in chains.chains if len(chain) > 1))
    inst = circuit.instances[victim]
    ti = inst.cell.sequential.scan_in
    # Rewire the TI pin back to the chain head's input: structurally
    # valid (validate() passes) but the shift path is broken.
    circuit.disconnect(victim, ti)
    circuit.connect(victim, ti, chains.scan_in_ports[0])
    assert validate(circuit).ok
    report = lint_netlist(circuit, chains=chains)
    assert "DFT004" in _rule_ids(report)
    msg = next(d for d in report.diagnostics if d.rule_id == "DFT004")
    assert f"cut at {victim!r}" in msg.message


def test_unscanned_flip_flop_detected(lib, small_circuit_mutable):
    circuit, chains = _scan_circuit(lib, small_circuit_mutable)
    orphan = chains.chains[0].pop()
    report = lint_netlist(circuit, chains=chains)
    ids = _rule_ids(report)
    # The dropped FF is flagged; the now-cut chain tail too.
    assert "DFT003" in ids
    assert orphan in {d.obj for d in report.diagnostics
                      if d.rule_id == "DFT003"}


def test_chain_continuity_sees_through_buffers(lib,
                                               small_circuit_mutable):
    circuit, chains = _scan_circuit(lib, small_circuit_mutable)
    head, second = chains.chains[0][0], chains.chains[0][1]
    q_net = circuit.instances[head].conns[
        circuit.instances[head].cell.sequential.output_pin]
    ti = circuit.instances[second].cell.sequential.scan_in
    # Legal electrical fix-up: a fanout buffer between Q and TI.
    new_net = circuit.split_net_before_sinks(q_net, [(second, ti)], "fo")
    buf = lib.family("BUF")[-1]
    circuit.add_instance("fobuf_t", buf, {"A": q_net, "Z": new_net.name})
    report = lint_netlist(circuit, chains=chains)
    assert "DFT004" not in _rule_ids(report)


def test_clean_prepared_benchmark_lints_clean():
    report = api.lint_netlist("s38417", scale=0.02, tp_percent=2.0)
    assert report.ok, report.format_text()
    # The engine actually ran the full pack, not an empty rule list.
    assert {"NL001", "DFT001", "DFT004"} <= set(report.rule_seconds)


def test_dirty_set_scoping_limits_structural_findings(lib):
    c = Circuit("scoped")
    c.add_input("a")
    c.add_net("n1")
    c.add_instance("inv_a", lib["INV_X1"], {"A": "a", "Z": "n1"})
    c.add_net("orphan")  # undriven + dangling
    full = lint_netlist(c)
    assert "NL001" in _rule_ids(full)
    scoped = lint_netlist(c, nets=frozenset({"n1"}))
    assert "NL001" not in _rule_ids(scoped)


# ---------------------------------------------------------------------------
# validate() facade back-compat


def test_validate_reports_diagnostics_and_strings(lib):
    c = Circuit("broken")
    c.add_net("floating")
    report = validate(c)
    assert not report.ok
    assert any("no driver" in e for e in report.errors)
    assert isinstance(report.errors[0], str)
    assert report.diagnostics[0].rule_id == "NL001"
    with pytest.raises(ValueError, match="validation failed"):
        report.raise_on_error()
    with pytest.raises(LintError) as excinfo:
        report.raise_on_error()
    assert "[NL001]" in str(excinfo.value)


def test_validate_runs_only_structural_rules(lib):
    # The between-steps audit must stay cheap: no chain walks, no
    # loop detection (run_flow's lint gates own those).
    report = validate(_loop_circuit(lib)).report
    structural_ids = {r.id for r in structural_rules()}
    assert set(report.rule_seconds) == structural_ids
    assert "DFT001" not in structural_ids


# ---------------------------------------------------------------------------
# Flow gates


def test_flow_stage0_lint_gate_records_report(lib):
    circuit = repro.load_circuit("s38417", scale=0.02)
    result = run_flow(circuit, lib, FlowConfig(
        tp_percent=2.0, lint=True,
        run_layout_phase=False, run_atpg_phase=False,
    ))
    assert "stage0" in result.lint_reports
    assert result.lint_reports["stage0"].ok


def test_corrupted_netlist_caught_by_pre_route_gate(lib, monkeypatch):
    """Chaos-style: a post-CTS corruption must abort *before* routing."""
    real_cts = flow_mod.synthesize_all_clock_trees

    def corrupting_cts(circuit, library, positions):
        trees = real_cts(circuit, library, positions)
        victim = next(
            name for name, inst in sorted(circuit.instances.items())
            if inst.cell.is_scan
            and inst.cell.sequential.scan_in in inst.conns
        )
        seq = circuit.instances[victim].cell.sequential
        own_q = circuit.instances[victim].conns[seq.output_pin]
        circuit.disconnect(victim, seq.scan_in)
        circuit.connect(victim, seq.scan_in, own_q)
        return trees

    class RouterBomb:
        def __init__(self, *args, **kwargs):
            raise AssertionError(
                "GlobalRouter constructed: the corrupted netlist was "
                "not stopped by the pre-route lint gate"
            )

    monkeypatch.setattr(flow_mod, "synthesize_all_clock_trees",
                        corrupting_cts)
    monkeypatch.setattr(flow_mod, "GlobalRouter", RouterBomb)

    circuit = repro.load_circuit("s38417", scale=0.02)
    with pytest.raises(LintError) as excinfo:
        run_flow(circuit, lib, FlowConfig(
            tp_percent=0.0, lint=True, run_atpg_phase=False,
        ))
    err = excinfo.value
    assert "lint gate 'pre_route'" in str(err)
    assert any(d.rule_id == "DFT004" for d in err.diagnostics)


def test_lint_gate_spans_stay_nested(lib):
    """Gate spans must not pollute the trace's top level, which is
    contractually the STAGE_KEYS subset."""
    from repro import obs

    circuit = repro.load_circuit("s38417", scale=0.02)
    with obs.tracing(label="lint-gate-trace"):
        result = run_flow(circuit, lib, FlowConfig(
            tp_percent=0.0, lint=True, run_atpg_phase=False,
        ))
    top = [span.name for span in result.trace.spans]
    assert top == list(result.stage_seconds)

    def walk(spans):
        for span in spans:
            yield span.name
            yield from walk(span.children)

    # The pre-route gate still records its span, inside eco_cts_route.
    assert "lint.netlist" in set(walk(result.trace.spans))


def test_flow_without_lint_flag_skips_gates(lib):
    circuit = repro.load_circuit("s38417", scale=0.02)
    result = run_flow(circuit, lib, FlowConfig(
        run_layout_phase=False, run_atpg_phase=False,
    ))
    assert result.lint_reports == {}


# ---------------------------------------------------------------------------
# CLI


def test_cli_lint_clean_circuit_exits_zero(tmp_path, capsys):
    out = tmp_path / "lint.json"
    code = cli.main(["lint", "s38417", "--scale", "0.02",
                     "--tp-percents", "0", "--json", str(out)])
    assert code == 0
    assert "[ok]" in capsys.readouterr().out
    import json
    payload = json.loads(out.read_text())
    assert payload["version"] == 1
    assert payload["levels"]["0"]["summary"]["ok"] is True


def test_cli_lint_findings_exit_code(monkeypatch, capsys):
    from repro.lint import Diagnostic, LintReport

    def fake_lint(circuit, **kwargs):
        return LintReport(diagnostics=[Diagnostic(
            rule_id="DFT001", severity="error",
            message="combinational loop through 2 cell(s)",
            obj="loop",
        )])

    monkeypatch.setattr(api, "lint_netlist", fake_lint)
    code = cli.main(["lint", "s38417", "--tp-percents", "0"])
    assert code == cli.EXIT_LINT == 4
    captured = capsys.readouterr().out
    assert "[DFT001]" in captured and "[FAIL]" in captured


def test_cli_lint_unknown_circuit_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["lint", "s38418"])
    assert excinfo.value.code == 2
