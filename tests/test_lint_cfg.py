"""Tests for the intraprocedural CFG builder (`repro.lint.cfg`).

The deterministic cases pin the tricky edges — finallies duplicated
per continuation, with-exits on both the normal and exception paths,
await points splitting blocks — and a hypothesis property checks the
two structural invariants every analysis relies on: every block is
reachable from the entry, and every block reaches the exit or the
virtual raise block.
"""

from __future__ import annotations

import ast
import textwrap

from hypothesis import given, settings, strategies as st

from repro.lint.cfg import (
    EXC,
    NORMAL,
    Assume,
    WithEnter,
    WithExit,
    build_cfg,
    can_raise,
    expr_name,
    function_units,
    root_name,
)


def _cfg(code):
    tree = ast.parse(textwrap.dedent(code))
    units = function_units(tree)
    assert units, "snippet defines no function"
    return build_cfg(units[0].func)


def _events(cfg):
    return [event for block in cfg.blocks for event in block.events]


def _reachable_from_entry(cfg):
    seen = {cfg.entry.id}
    stack = [cfg.entry]
    while stack:
        block = stack.pop()
        for succ, _kind in block.succs:
            if succ.id not in seen:
                seen.add(succ.id)
                stack.append(succ)
    return seen


def _reaches_terminal(cfg):
    """Ids of blocks with a path to the exit or the raise block."""
    seen = set()
    stack = []
    for terminal in (cfg.exit, cfg.raises):
        if any(b.id == terminal.id for b in cfg.blocks):
            seen.add(terminal.id)
            stack.append(terminal)
    while stack:
        block = stack.pop()
        for pred, _kind in block.preds:
            if pred.id not in seen:
                seen.add(pred.id)
                stack.append(pred)
    return seen


# ---------------------------------------------------------------------------
# Deterministic edge cases


def test_return_in_try_routes_through_finally():
    cfg = _cfg("""\
        def f(fh):
            try:
                return fh.read()
            finally:
                fh.close()
    """)
    # The finally body (fh.close()) must lie on the path to exit.
    close_blocks = [
        block for block in cfg.blocks
        for event in block.events
        if isinstance(event, ast.Expr)
        and isinstance(event.value, ast.Call)
        and expr_name(event.value.func) == "fh.close"
    ]
    assert close_blocks, "finally body missing from the CFG"
    reaches = _reaches_terminal(cfg)
    assert all(block.id in reaches for block in close_blocks)
    # The return cannot bypass the finally: every pred path of exit
    # goes through a block containing the close call.
    exit_pred_ids = {pred.id for pred, _ in cfg.exit.preds}
    close_ids = {block.id for block in close_blocks}
    assert exit_pred_ids & close_ids


def test_return_inside_finally_abandons_original_return():
    cfg = _cfg("""\
        def f():
            try:
                return 1
            finally:
                return 2
    """)
    returned = [
        event.value.value
        for event in _events(cfg)
        if isinstance(event, ast.Return)
        and isinstance(event.value, ast.Constant)
    ]
    # Both returns appear, but the path via the finally wins: the
    # exit is reachable (via return 2) and nothing dangles.
    assert sorted(returned) == [1, 2]
    assert cfg.exit.preds


def test_nested_with_two_locks_exits_both_paths():
    cfg = _cfg("""\
        def f(a, b):
            with a:
                with b:
                    work()
    """)
    enters = [e for e in _events(cfg) if isinstance(e, WithEnter)]
    exits = [e for e in _events(cfg) if isinstance(e, WithExit)]
    assert sorted(expr_name(e.item.context_expr) for e in enters) \
        == ["a", "b"]
    # Each with duplicates its exit per continuation (normal + exc),
    # so at least one WithExit per manager, and the inner manager's
    # exception path must release the outer one too.
    exit_names = sorted(expr_name(e.item.context_expr) for e in exits)
    assert "a" in exit_names and "b" in exit_names
    raise_ids = {cfg.raises.id}
    assert any(
        succ.id in raise_ids or True
        for block in cfg.blocks for succ, kind in block.succs
        if kind == EXC
    )


def test_with_exit_runs_on_exception_path():
    cfg = _cfg("""\
        def f(lock):
            with lock:
                work()
    """)
    # Some block on a path to the virtual raise block carries the
    # WithExit: the lock is released even when work() raises.
    reaches_raise = set()
    stack = [cfg.raises]
    seen = {cfg.raises.id}
    while stack:
        block = stack.pop()
        for pred, _kind in block.preds:
            if pred.id not in seen:
                seen.add(pred.id)
                stack.append(pred)
    reaches_raise = seen
    exit_blocks = [
        block for block in cfg.blocks
        if any(isinstance(e, WithExit) for e in block.events)
    ]
    assert any(block.id in reaches_raise for block in exit_blocks)


def test_async_with_and_async_for():
    tree = ast.parse(textwrap.dedent("""\
        async def f(conn, items):
            async with conn.lock() as held:
                pass
            async for item in items:
                use(item)
    """))
    cfg = build_cfg(function_units(tree)[0].func)
    enters = [e for e in _events(cfg) if isinstance(e, WithEnter)]
    assert enters and enters[0].is_async
    # async for iterates through an await point: an Await expression
    # must appear in the graph so lock-across-await checks see it.
    has_await = any(
        isinstance(node, ast.Await)
        for event in _events(cfg)
        if isinstance(event, ast.AST)
        for node in ast.walk(event)
    )
    assert has_await


def test_await_splits_blocks():
    tree = ast.parse(textwrap.dedent("""\
        async def f(x):
            a = 1
            await x.go()
            b = 2
            return a + b
    """))
    cfg = build_cfg(function_units(tree)[0].func)
    # The statements before and after the await land in different
    # blocks, so dataflow facts can change at the suspension point.
    homes = {}
    for block in cfg.blocks:
        for event in block.events:
            if isinstance(event, ast.Assign):
                homes[event.targets[0].id] = block.id
    assert homes["a"] != homes["b"]


def test_while_true_without_break_never_reaches_exit():
    cfg = _cfg("""\
        def f():
            while True:
                pass
    """)
    assert not cfg.exit.preds


def test_while_true_with_break_reaches_exit():
    cfg = _cfg("""\
        def f(q):
            while True:
                if q.done():
                    break
    """)
    assert cfg.exit.preds


def test_loop_else_and_assume_edges():
    cfg = _cfg("""\
        def f(items):
            for item in items:
                if item:
                    return item
            else:
                return None
    """)
    assumes = [e for e in _events(cfg) if isinstance(e, Assume)]
    values = sorted(a.value for a in assumes)
    assert values == [False, True]
    assert cfg.exit.preds


def test_except_handler_and_bare_raise():
    cfg = _cfg("""\
        def f(fh):
            try:
                fh.write("x")
            except OSError:
                raise
            return True
    """)
    # The re-raise path must land in the virtual raise block and the
    # success path in exit.
    assert cfg.raises.preds
    assert cfg.exit.preds


def test_can_raise_classifies_events():
    guard = ast.parse("fh is not None").body[0]
    call = ast.parse("fh.close()").body[0]
    item = ast.withitem(context_expr=ast.Name(id="lock", ctx=ast.Load()))
    assert not can_raise(guard)
    assert can_raise(call)
    assert can_raise(WithEnter(item, lineno=1))
    assert can_raise(WithExit(item, lineno=1))
    assert not can_raise(Assume(ast.Constant(value=True), True, 1))


def test_function_units_cover_methods_and_closures():
    tree = ast.parse(textwrap.dedent("""\
        class Manager:
            def submit(self):
                def helper():
                    pass
                return helper

        def free():
            pass
    """))
    units = function_units(tree)
    names = sorted(u.qualname for u in units)
    assert names == ["Manager.submit", "Manager.submit.<locals>.helper",
                     "free"]
    by_name = {u.qualname: u for u in units}
    assert by_name["Manager.submit"].cls is not None
    # Closures keep the enclosing class for self.* lock resolution.
    assert by_name["Manager.submit.<locals>.helper"].cls is not None
    assert by_name["free"].cls is None


def test_expr_name_and_root_name():
    expr = ast.parse("self._jobs[key].state", mode="eval").body
    assert expr_name(expr) == "self._jobs[key].state"
    assert root_name("self._jobs[key].state") == "self"
    assert expr_name(ast.parse("f()", mode="eval").body) is None


# ---------------------------------------------------------------------------
# Structural invariants, property-tested over generated programs


@st.composite
def _statements(draw, depth, in_loop):
    """A small, always-valid statement list exercising every edge kind."""
    simple = st.sampled_from([
        "x = 1",
        "work()",
        "return x" if not in_loop else "continue",
        "raise ValueError(x)",
    ] + (["break"] if in_loop else []))
    count = draw(st.integers(min_value=1, max_value=3))
    lines = []
    for _ in range(count):
        if depth <= 0:
            lines.append(draw(simple))
            continue
        kind = draw(st.sampled_from(
            ["simple", "if", "while", "for", "try", "finally", "with"]))
        if kind == "simple":
            lines.append(draw(simple))
        elif kind == "if":
            body = draw(_statements(depth - 1, in_loop))
            lines.append("if cond:")
            lines.extend("    " + b for b in body)
            if draw(st.booleans()):
                orelse = draw(_statements(depth - 1, in_loop))
                lines.append("else:")
                lines.extend("    " + b for b in orelse)
        elif kind == "while":
            body = draw(_statements(depth - 1, True))
            lines.append("while cond:")
            lines.extend("    " + b for b in body)
        elif kind == "for":
            body = draw(_statements(depth - 1, True))
            lines.append("for item in items:")
            lines.extend("    " + b for b in body)
        elif kind == "try":
            body = draw(_statements(depth - 1, in_loop))
            handler = draw(_statements(depth - 1, in_loop))
            lines.append("try:")
            lines.extend("    " + b for b in body)
            lines.append("except OSError:")
            lines.extend("    " + b for b in handler)
        elif kind == "finally":
            body = draw(_statements(depth - 1, in_loop))
            cleanup = draw(_statements(depth - 1, False))
            lines.append("try:")
            lines.extend("    " + b for b in body)
            lines.append("finally:")
            lines.extend("    " + b for b in cleanup)
        else:
            body = draw(_statements(depth - 1, in_loop))
            lines.append("with lock:")
            lines.extend("    " + b for b in body)
    return lines


@given(_statements(depth=3, in_loop=False))
@settings(max_examples=60, deadline=None)
def test_cfg_blocks_reachable_and_terminating(body_lines):
    code = "def f(x, cond, items, lock):\n" + "\n".join(
        "    " + line for line in body_lines)
    tree = ast.parse(code)
    cfg = build_cfg(function_units(tree)[0].func)

    block_ids = {block.id for block in cfg.blocks}
    reachable = _reachable_from_entry(cfg)
    assert block_ids <= reachable, \
        f"unreachable blocks survived pruning:\n{code}"

    reaches = _reaches_terminal(cfg)
    stuck = block_ids - reaches
    assert not stuck, \
        f"blocks {sorted(stuck)} reach neither exit nor raise:\n{code}"

    # Edge symmetry: succs and preds mirror each other.
    for block in cfg.blocks:
        for succ, kind in block.succs:
            assert any(p is block and k == kind for p, k in succ.preds)
        for pred, kind in block.preds:
            assert any(s is block and k == kind for s, k in pred.succs)
