"""Golden-fixture regression tests for the Table 1/2/3 outputs.

The small seed circuits' sweep outputs are frozen as JSON under
``tests/golden/``; every run re-executes the sweep and diffs fresh rows
against the frozen ones.  Any change to TPI, scan, ATPG, layout,
extraction or STA that moves a published-table quantity shows up here
as a precise field-level diff instead of a silent drift.

The flows are deterministic (fixed seeds, process-independent hashes),
so the comparison is exact for ints/strings and tight (rel=1e-9) for
floats — the tolerance forgives float formatting, not behaviour.

After an *intentional* behaviour change, refresh the fixtures with::

    PYTHONPATH=src python -m pytest tests/test_golden_tables.py \
        --update-golden
"""

from __future__ import annotations

import functools
import json
from pathlib import Path

import pytest

from repro.atpg import AtpgConfig
from repro.circuits import s38417_like
from repro.core import ExperimentConfig, FlowConfig, run_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Frozen sweep settings.  Changing anything here invalidates the
#: fixtures — regenerate them with --update-golden when you do.
GOLDEN_SWEEPS = {
    "s38417_small": ExperimentConfig(
        name="s38417_small",
        # 20 flip-flops at this scale: 5% and 10% land on 1 and 2
        # inserted TSFFs, so every level's rows genuinely differ.
        circuit_factory=functools.partial(s38417_like, scale=0.012),
        tp_percents=(0.0, 5.0, 10.0),
        flow=FlowConfig(
            atpg=AtpgConfig(seed=11, backtrack_limit=24,
                            max_deterministic=60,
                            abort_recovery_blocks=4,
                            second_chance_factor=1),
        ),
    ),
}


def fresh_tables(name: str) -> dict:
    result = run_experiment(GOLDEN_SWEEPS[name])
    return {
        "table1": result.table1_rows(),
        "table2": result.table2_rows(),
        "table3": result.table3_rows(),
    }


def assert_rows_match(fresh, golden, context: str) -> None:
    assert len(fresh) == len(golden), (
        f"{context}: {len(fresh)} rows, golden has {len(golden)}"
    )
    for i, (f_row, g_row) in enumerate(zip(fresh, golden)):
        assert sorted(f_row) == sorted(g_row), (
            f"{context} row {i}: column set changed"
        )
        for key, g_val in g_row.items():
            f_val = f_row[key]
            if isinstance(g_val, float) or isinstance(f_val, float):
                assert f_val == pytest.approx(g_val, rel=1e-9, abs=1e-9), (
                    f"{context} row {i} [{key}]: {f_val!r} != {g_val!r}"
                )
            else:
                assert f_val == g_val, (
                    f"{context} row {i} [{key}]: {f_val!r} != {g_val!r}"
                )


@pytest.mark.parametrize("name", sorted(GOLDEN_SWEEPS))
def test_tables_match_golden(name, update_golden):
    path = GOLDEN_DIR / f"{name}.json"
    fresh = fresh_tables(name)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        pytest.skip(f"rewrote {path}")
    assert path.exists(), (
        f"golden fixture {path} missing; create it with --update-golden"
    )
    golden = json.loads(path.read_text(encoding="utf-8"))
    for table in ("table1", "table2", "table3"):
        assert_rows_match(fresh[table], golden[table], f"{name}.{table}")
