"""Tests for the static-analysis engine core: rules, reports, baseline."""

import json

import pytest

from repro.lint import (
    Baseline,
    Diagnostic,
    ERROR,
    INFO,
    LintError,
    LintReport,
    WARNING,
)
from repro.lint.core import (
    RULE_PACKS,
    find_rule,
    make_diagnostic,
    pack_rules,
    rule,
    run_rules,
)


@pytest.fixture()
def scratch_pack():
    """A throwaway rule pack, deregistered after the test."""
    name = "scratch-test-pack"
    yield name
    RULE_PACKS.pop(name, None)


def _diag(rule_id="T001", severity=ERROR, message="boom", **kw):
    return Diagnostic(rule_id=rule_id, severity=severity,
                      message=message, **kw)


# ---------------------------------------------------------------------------
# Diagnostic


def test_diagnostic_rejects_unknown_severity():
    with pytest.raises(ValueError, match="unknown severity"):
        Diagnostic(rule_id="T001", severity="fatal", message="x")


def test_diagnostic_location_and_format():
    src = _diag(file="a/b.py", line=7, hint="sort it")
    assert src.location == "a/b.py:7"
    assert "[T001]" in src.format()
    assert "(hint: sort it)" in src.format()
    design = _diag(obj="net_42")
    assert design.location == "net_42"
    assert _diag().location == "<design>"


def test_fingerprint_tolerates_line_drift():
    a = _diag(file="m.py", line=10, snippet="for x in set(y):")
    b = _diag(file="m.py", line=99, snippet="for x in set(y):")
    assert a.fingerprint == b.fingerprint
    c = _diag(file="m.py", line=10, snippet="for x in sorted(y):")
    assert a.fingerprint != c.fingerprint


def test_fingerprint_distinguishes_design_objects():
    assert (_diag(obj="net_a").fingerprint
            != _diag(obj="net_b").fingerprint)


def test_diagnostic_to_dict_omits_empty_fields():
    d = _diag(obj="n1").to_dict()
    assert d["rule"] == "T001" and d["obj"] == "n1"
    assert "file" not in d and "hint" not in d
    assert d["fingerprint"] == _diag(obj="n1").fingerprint


# ---------------------------------------------------------------------------
# Rule registration and the engine


def test_rule_decorator_registers_and_rejects_duplicates(scratch_pack):
    @rule(scratch_pack, "T001", "first", severity=WARNING)
    def first(ctx):
        return []

    assert [r.id for r in pack_rules(scratch_pack)] == ["T001"]
    assert find_rule(scratch_pack, "T001").severity == WARNING
    with pytest.raises(ValueError, match="duplicate rule id"):
        @rule(scratch_pack, "T001", "again")
        def again(ctx):
            return []


def test_run_rules_collects_sorts_and_times(scratch_pack):
    @rule(scratch_pack, "T002", "warns", severity=WARNING)
    def warns(ctx):
        yield make_diagnostic(find_rule(scratch_pack, "T002"), "late",
                              obj="z")

    @rule(scratch_pack, "T001", "errors", severity=ERROR,
          hint="default hint")
    def errors(ctx):
        yield make_diagnostic(find_rule(scratch_pack, "T001"), "early",
                              obj="a")

    report = run_rules(pack_rules(scratch_pack), ctx=None,
                       pack=scratch_pack)
    # Sorted most severe first even though the warning rule ran first.
    assert [d.severity for d in report.diagnostics] == [ERROR, WARNING]
    assert report.diagnostics[0].hint == "default hint"
    assert set(report.rule_seconds) == {"T001", "T002"}
    assert report.by_rule() == {"T001": 1, "T002": 1}


def test_find_rule_unknown_raises():
    with pytest.raises(KeyError):
        find_rule("netlist", "NOPE999")


# ---------------------------------------------------------------------------
# LintReport


def test_report_counts_ok_and_text():
    report = LintReport(diagnostics=[
        _diag("T001", ERROR, "e1"),
        _diag("T002", WARNING, "w1"),
        _diag("T003", INFO, "i1"),
    ])
    assert report.counts() == {ERROR: 1, WARNING: 1, INFO: 1}
    assert not report.ok
    text = report.format_text()
    assert "1 error(s), 1 warning(s), 1 info" in text
    assert LintReport().ok


def test_raise_on_error_keeps_full_list_and_rule_ids():
    diags = [_diag("T001", ERROR, f"err {i}", obj=f"n{i}")
             for i in range(8)]
    report = LintReport(diagnostics=diags)
    with pytest.raises(LintError) as excinfo:
        report.raise_on_error(context="gate test")
    err = excinfo.value
    # Message: context, count, rule IDs, and an elision marker -- but
    # the complete list stays reachable on the exception.
    assert "gate test failed: 8 error(s)" in str(err)
    assert "[T001]" in str(err)
    assert "(+3 more)" in str(err)
    assert isinstance(err, ValueError)
    assert len(err.diagnostics) == 8
    assert err.report is report


def test_raise_on_error_noop_when_clean():
    LintReport(diagnostics=[_diag(severity=WARNING)]).raise_on_error()


def test_merge_folds_findings_and_runtimes():
    a = LintReport(diagnostics=[_diag("T001", WARNING, "w")],
                   rule_seconds={"T001": 1.0})
    b = LintReport(diagnostics=[_diag("T002", ERROR, "e")],
                   rule_seconds={"T001": 0.5, "T002": 2.0})
    a.merge(b)
    assert [d.severity for d in a.diagnostics] == [ERROR, WARNING]
    assert a.rule_seconds == {"T001": 1.5, "T002": 2.0}


def test_report_json_schema_roundtrips(tmp_path):
    report = LintReport(diagnostics=[_diag(obj="n1")],
                        rule_seconds={"T001": 0.25})
    payload = report.to_json()
    # The CI artifact must stay json-serialisable and versioned.
    parsed = json.loads(json.dumps(payload))
    assert parsed["schema"] == 2
    assert parsed["summary"]["ok"] is False
    assert parsed["summary"]["by_rule"] == {"T001": 1}
    assert parsed["diagnostics"][0]["rule"] == "T001"


# ---------------------------------------------------------------------------
# Baseline


def test_baseline_roundtrip_and_suppression(tmp_path):
    known = _diag("T001", ERROR, "known", obj="n1")
    fresh = _diag("T001", ERROR, "fresh", obj="n2")
    baseline = Baseline.from_report(LintReport(diagnostics=[known]))
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert len(loaded) == 1

    report = LintReport(diagnostics=[known, fresh])
    report.apply_baseline(loaded)
    assert report.diagnostics == [fresh]
    assert report.suppressed == [known]
    # A baselined-only report is clean: the gate passes.
    clean = LintReport(diagnostics=[known])
    clean.apply_baseline(loaded)
    assert clean.ok and clean.suppressed == [known]


def test_baseline_missing_file_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "nope.json")) == 0


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "entries": {}}')
    with pytest.raises(ValueError, match="unsupported baseline version"):
        Baseline.load(path)


def test_baseline_file_is_reviewable(tmp_path):
    diag = _diag("T001", ERROR, "msg", file="m.py", line=3, snippet="x")
    path = tmp_path / "baseline.json"
    Baseline.from_report(LintReport(diagnostics=[diag])).save(path)
    data = json.loads(path.read_text())
    entry = data["entries"][diag.fingerprint]
    # Entries carry rule/location/message so reviews don't need to
    # reverse hashes.
    assert entry == {"rule": "T001", "location": "m.py:3",
                     "message": "msg"}
