"""Tests for the parallel sweep executor and its result cache.

The headline test is the determinism regression gate: the s38417-small
sweep run serially (the reference semantics) and through the executor
with ``jobs=4`` must produce *exactly* equal Table 1/2/3 rows — not
approximately equal: the executor's contract is bit-identical results
at any job count.
"""

from __future__ import annotations

import functools
import os
import pickle

import pytest

from repro.atpg import AtpgConfig
from repro.circuits import s38417_like
from repro.core import (
    ExecutorConfig,
    ExperimentConfig,
    FlowConfig,
    FlowSummary,
    ResultCache,
    SweepExecutionError,
    circuit_structural_hash,
    config_fingerprint,
    derive_seed,
    flow_cache_key,
    run_experiment,
    run_flow,
    run_sweep,
    run_sweeps,
    summarize,
)
from repro.core import executor as executor_mod
from repro.library import cmos130

#: Cheap ATPG knobs: full flow semantics at a fraction of the runtime.
FAST_ATPG = AtpgConfig(seed=7, backtrack_limit=24, max_deterministic=60,
                       abort_recovery_blocks=4, second_chance_factor=1)
LEVELS = (0.0, 2.0, 4.0)
SCALE = 0.012


def small_experiment(name: str = "s38417") -> ExperimentConfig:
    return ExperimentConfig(
        name=name,
        circuit_factory=functools.partial(s38417_like, scale=SCALE),
        tp_percents=LEVELS,
        flow=FlowConfig(atpg=FAST_ATPG),
    )


def table_dicts(result):
    return {
        "table1": result.table1_rows(),
        "table2": result.table2_rows(),
        "table3": result.table3_rows(),
    }


@pytest.fixture(scope="module")
def serial_result():
    """The reference: the classic serial sweep."""
    return run_experiment(small_experiment())


@pytest.fixture(scope="module")
def sweep_cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("sweep_cache"))


@pytest.fixture(scope="module")
def parallel_result(sweep_cache_dir):
    """The same sweep through the executor: 4 workers, cold cache."""
    return run_sweep(
        small_experiment(),
        ExecutorConfig(jobs=4, cache_dir=sweep_cache_dir),
    )


@pytest.fixture(scope="module")
def warm_result(parallel_result, sweep_cache_dir):
    """Second invocation against the now-warm cache."""
    return run_sweep(
        small_experiment(),
        ExecutorConfig(jobs=4, cache_dir=sweep_cache_dir),
    )


# ----------------------------------------------------------------------
# Determinism regression gate (the tentpole's correctness test)
# ----------------------------------------------------------------------
def test_parallel_sweep_is_bit_identical_to_serial(serial_result,
                                                   parallel_result):
    assert table_dicts(serial_result) == table_dicts(parallel_result)


def test_parallel_sweep_ran_in_worker_processes(parallel_result):
    pids = {run.worker_pid for run in parallel_result.runs.values()}
    assert os.getpid() not in pids
    assert not any(run.from_cache for run in parallel_result.runs.values())


def test_parallel_sweep_covers_all_levels(parallel_result):
    assert sorted(parallel_result.runs) == sorted(LEVELS)
    for run in parallel_result.runs.values():
        assert isinstance(run, FlowSummary)
        assert run.test is not None and run.area is not None
        assert run.sta is not None and run.cache_key


# ----------------------------------------------------------------------
# Warm cache
# ----------------------------------------------------------------------
def test_warm_cache_serves_every_level(warm_result, parallel_result):
    assert all(run.from_cache for run in warm_result.runs.values())
    assert table_dicts(warm_result) == table_dicts(parallel_result)


def test_warm_cache_reruns_no_flow_stage(warm_result):
    for run in warm_result.runs.values():
        assert sum(run.stage_seconds.values()) == 0.0
        # The original timings survive for inspection.
        assert sum(run.cached_stage_seconds.values()) > 0.0


def test_no_cache_flag_forces_fresh_runs(sweep_cache_dir):
    config = small_experiment()
    # Layout-off, single level: cheap, and its key differs from the
    # cached full-flow levels anyway.
    config.tp_percents = (0.0,)
    config.flow = FlowConfig(atpg=FAST_ATPG, run_layout_phase=False)
    executor = ExecutorConfig(jobs=1, cache_dir=sweep_cache_dir,
                              use_cache=False)
    result = run_sweep(config, executor)
    assert not result.runs[0.0].from_cache


# ----------------------------------------------------------------------
# Cache keys and fingerprints
# ----------------------------------------------------------------------
def test_structural_hash_is_reproducible_and_sensitive():
    a = s38417_like(scale=SCALE)
    b = s38417_like(scale=SCALE)
    c = s38417_like(scale=0.015)
    assert circuit_structural_hash(a) == circuit_structural_hash(b)
    assert circuit_structural_hash(a) == circuit_structural_hash(a.clone())
    assert circuit_structural_hash(a) != circuit_structural_hash(c)


def test_structural_hash_sees_netlist_edits():
    a = s38417_like(scale=SCALE)
    before = circuit_structural_hash(a)
    lib = cmos130()
    net = a.new_net("probe")
    a.add_instance(a.new_instance_name("probe"), lib["INV_X1"],
                   {"A": a.inputs[0], "Z": net.name})
    assert circuit_structural_hash(a) != before


def test_config_fingerprint_distinguishes_configs():
    base = FlowConfig(atpg=FAST_ATPG)
    assert config_fingerprint(base) == config_fingerprint(
        FlowConfig(atpg=FAST_ATPG))
    assert config_fingerprint(base) != config_fingerprint(
        FlowConfig(atpg=FAST_ATPG, tp_percent=1.0))
    assert config_fingerprint(base) != config_fingerprint(
        FlowConfig(atpg=AtpgConfig(seed=8)))


def test_cache_key_covers_circuit_config_and_mode():
    circuit = s38417_like(scale=SCALE)
    lib = cmos130()
    config = FlowConfig(atpg=FAST_ATPG)
    key = flow_cache_key(circuit, config, lib)
    assert key == flow_cache_key(s38417_like(scale=SCALE), config, lib)
    assert key != flow_cache_key(circuit, FlowConfig(tp_percent=2.0), lib)
    assert key != flow_cache_key(circuit, config, lib, extra="derived")
    seed = derive_seed(key)
    assert 0 <= seed < 2 ** 63
    assert seed == derive_seed(key)


# ----------------------------------------------------------------------
# ResultCache robustness
# ----------------------------------------------------------------------
def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path)
    summary = FlowSummary(tp_percent=1.0, n_test_points=3,
                          stage_seconds={"atpg": 1.5}, cache_key="ab" * 32)
    key = "ab" * 32
    assert cache.get(key) is None
    cache.put(key, summary)
    loaded = cache.get(key)
    assert loaded == summary
    assert cache.hits == 1 and cache.misses == 1


def test_result_cache_treats_corrupt_entries_as_misses(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" * 32
    cache.put(key, FlowSummary(tp_percent=0.0, n_test_points=0))
    cache.path(key).write_bytes(b"not a pickle")
    assert cache.get(key) is None
    assert not cache.path(key).exists()  # dropped, will be recomputed


def test_result_cache_rejects_foreign_objects(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ef" * 32
    path = cache.path(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"not": "a summary"}))
    assert cache.get(key) is None


# ----------------------------------------------------------------------
# Size-capped LRU eviction
# ----------------------------------------------------------------------
def _filled_cache(tmp_path, keys, max_bytes=None):
    """A cache holding one tiny summary per key, mtimes strictly
    increasing in ``keys`` order (explicit, because filesystem mtime
    granularity is too coarse for back-to-back puts)."""
    cache = ResultCache(tmp_path, max_bytes=max_bytes)
    for i, key in enumerate(keys):
        cache.put(key, FlowSummary(tp_percent=float(i), n_test_points=i,
                                   cache_key=key))
        os.utime(cache.path(key), (1000.0 + i, 1000.0 + i))
    return cache


def test_unbounded_cache_never_evicts(tmp_path):
    keys = [f"{i:02x}" * 32 for i in range(4)]
    cache = _filled_cache(tmp_path, keys)
    assert all(cache.path(k).exists() for k in keys)
    assert cache.evictions == 0


def test_result_cache_evicts_oldest_beyond_budget(tmp_path):
    keys = [f"{i:02x}" * 32 for i in range(4)]
    probe = _filled_cache(tmp_path / "probe", keys[:1])
    entry_size = probe.path(keys[0]).stat().st_size
    # Room for two entries: writing four must evict the two oldest.
    cache = _filled_cache(tmp_path / "lru", keys,
                          max_bytes=2 * entry_size)
    assert not cache.path(keys[0]).exists()
    assert not cache.path(keys[1]).exists()
    assert cache.path(keys[2]).exists()
    assert cache.path(keys[3]).exists()
    assert cache.evictions >= 2
    assert cache.total_bytes() <= 2 * entry_size


def test_result_cache_get_refreshes_recency(tmp_path):
    keys = [f"{i:02x}" * 32 for i in range(3)]
    probe = _filled_cache(tmp_path / "probe", keys[:1])
    entry_size = probe.path(keys[0]).stat().st_size
    cache = _filled_cache(tmp_path / "lru", keys[:2],
                          max_bytes=2 * entry_size)
    assert cache.get(keys[0]) is not None  # touch: now most recent
    cache.put(keys[2], FlowSummary(tp_percent=9.0, n_test_points=9,
                                   cache_key=keys[2]))
    assert cache.path(keys[0]).exists()      # refreshed, survives
    assert not cache.path(keys[1]).exists()  # stale, evicted
    assert cache.path(keys[2]).exists()


def test_result_cache_never_evicts_entry_just_written(tmp_path):
    key = "aa" * 32
    cache = ResultCache(tmp_path, max_bytes=1)  # below any entry size
    cache.put(key, FlowSummary(tp_percent=0.0, n_test_points=0,
                               cache_key=key))
    # The budget is unsatisfiable, but evicting the entry being
    # written would turn the cache into a black hole.
    assert cache.path(key).exists()
    assert cache.get(key) is not None


def test_executor_config_passes_cache_budget_through(tmp_path):
    config = ExecutorConfig(cache_dir=str(tmp_path),
                            cache_max_bytes=12345)
    assert config.cache.max_bytes == 12345


def test_sweep_honours_cache_budget_end_to_end(tmp_path):
    """A capped sweep stays within budget and reports evictions."""
    from repro import api

    cache_dir = str(tmp_path / "capped")
    warm = api.sweep_report("s38417", scale=SCALE, tp_percents=LEVELS,
                            cache_dir=cache_dir, atpg=FAST_ATPG)
    assert not warm.failures and warm.cache_evictions == 0
    sizes = [p.stat().st_size
             for p in (tmp_path / "capped").glob("*/*.pkl")]
    assert len(sizes) == len(LEVELS)
    budget = max(sizes) * 2  # room for ~2 entries
    # Sweep *new* levels under the cap: their puts must evict the old
    # entries (eviction happens on write — a pure-hit run never evicts).
    capped = api.sweep_report("s38417", scale=SCALE,
                              tp_percents=(1.0, 3.0),
                              cache_dir=cache_dir,
                              cache_max_bytes=budget, atpg=FAST_ATPG)
    assert not capped.failures
    assert capped.cache_evictions >= 1
    remaining = sum(p.stat().st_size
                    for p in (tmp_path / "capped").glob("*/*.pkl"))
    assert remaining <= budget


# ----------------------------------------------------------------------
# Failure handling and resume
# ----------------------------------------------------------------------
def test_failed_levels_resume_from_cache(tmp_path, monkeypatch):
    cache_dir = str(tmp_path / "resume")
    config = ExperimentConfig(
        name="s38417",
        circuit_factory=functools.partial(s38417_like, scale=0.01),
        tp_percents=(0.0, 2.0, 4.0),
        flow=FlowConfig(atpg=FAST_ATPG, run_layout_phase=False),
    )

    real_run_flow = executor_mod.run_flow

    def failing_run_flow(circuit, library, flow_config):
        if flow_config.tp_percent == 2.0:
            raise RuntimeError("injected level failure")
        return real_run_flow(circuit, library, flow_config)

    monkeypatch.setattr(executor_mod, "run_flow", failing_run_flow)
    with pytest.raises(SweepExecutionError) as excinfo:
        run_sweep(config, ExecutorConfig(jobs=1, cache_dir=cache_dir))
    assert [(n, p) for n, p, _ in excinfo.value.failures] == [("s38417", 2.0)]

    # The healthy levels were cached before the failure surfaced ...
    monkeypatch.setattr(executor_mod, "run_flow", real_run_flow)
    result = run_sweep(config, ExecutorConfig(jobs=1, cache_dir=cache_dir))
    assert result.runs[0.0].from_cache and result.runs[4.0].from_cache
    # ... and only the failed level ran fresh on the retry.
    assert not result.runs[2.0].from_cache


def test_unpicklable_factory_fails_with_pointed_message():
    config = ExperimentConfig(
        name="s38417",
        circuit_factory=lambda: s38417_like(scale=0.01),
        tp_percents=(0.0,),
        flow=FlowConfig(atpg=FAST_ATPG, run_layout_phase=False),
    )
    with pytest.raises(TypeError, match="functools.partial"):
        run_sweep(config, ExecutorConfig(jobs=2))


# ----------------------------------------------------------------------
# Multi-circuit fan-out and derived seeding
# ----------------------------------------------------------------------
def test_run_sweeps_fans_out_whole_circuits():
    flow = FlowConfig(atpg=FAST_ATPG, run_layout_phase=False)
    configs = []
    for name, scale in (("tiny_a", 0.01), ("tiny_b", 0.012)):
        configs.append(ExperimentConfig(
            name=name,
            circuit_factory=functools.partial(s38417_like, scale=scale),
            tp_percents=(0.0, 2.0),
            flow=flow,
        ))
    results = run_sweeps(configs, ExecutorConfig(jobs=4))
    assert sorted(results) == ["tiny_a", "tiny_b"]
    for result in results.values():
        assert sorted(result.runs) == [0.0, 2.0]
        assert all(r.test is not None for r in result.runs.values())
    keys_a = {r.cache_key for r in results["tiny_a"].runs.values()}
    keys_b = {r.cache_key for r in results["tiny_b"].runs.values()}
    assert len(keys_a | keys_b) == 4  # every level's key is distinct


def test_derived_seeds_stay_parallel_serial_identical():
    def experiment():
        return ExperimentConfig(
            name="s38417",
            circuit_factory=functools.partial(s38417_like, scale=0.01),
            tp_percents=(0.0, 2.0),
            flow=FlowConfig(atpg=FAST_ATPG, run_layout_phase=False),
        )

    serial = run_sweep(experiment(),
                       ExecutorConfig(jobs=1, derive_seeds=True))
    parallel = run_sweep(experiment(),
                         ExecutorConfig(jobs=2, derive_seeds=True))
    serial_rows = [r.test_metrics() for _, r in sorted(serial.runs.items())]
    par_rows = [r.test_metrics() for _, r in sorted(parallel.runs.items())]
    assert serial_rows == par_rows


# ----------------------------------------------------------------------
# FlowSummary contract
# ----------------------------------------------------------------------
def test_summary_raises_like_flow_result_when_phases_skipped():
    circuit = s38417_like(scale=0.01)
    config = FlowConfig(atpg=FAST_ATPG, run_layout_phase=False)
    summary = summarize(run_flow(circuit, cmos130(), config))
    assert summary.test_metrics().n_patterns > 0
    with pytest.raises(ValueError, match="layout phase"):
        summary.area_metrics()
    assert summary.sta is None
    assert summary.log  # per-stage records came along
    assert all("ms" in line for line in summary.log)
