"""Tests for the observability layer: tracer semantics, exporters, and
the instrumented flow/executor.

The contract under test, in order of importance:

* tracing off (the default) is a no-op and changes nothing — results
  and cache keys are identical with and without it;
* a traced ``run_flow`` reports exactly the stages the flow recorded
  in ``stage_seconds``, with matching durations;
* worker traces ride back through the executor and merge (with the
  parent's scheduling spans) into a valid Chrome trace-event file.
"""

from __future__ import annotations

import functools
import json
import pickle

import pytest

from repro import obs
from repro.atpg import AtpgConfig
from repro.circuits import s38417_like
from repro.core import (
    ExecutorConfig,
    ExperimentConfig,
    FlowConfig,
    FlowSummary,
    STAGE_KEYS,
    format_stage_seconds,
    run_flow,
    run_sweep,
)
from repro.library import cmos130
from repro.obs.tracer import Span, Trace

#: Cheap ATPG knobs (same spirit as test_executor's FAST_ATPG).
FAST_ATPG = AtpgConfig(seed=7, backtrack_limit=24, max_deterministic=60,
                       abort_recovery_blocks=4, second_chance_factor=1)


def small_experiment() -> ExperimentConfig:
    return ExperimentConfig(
        name="s38417",
        circuit_factory=functools.partial(s38417_like, scale=0.012),
        tp_percents=(0.0, 2.0),
        flow=FlowConfig(atpg=FAST_ATPG, run_layout_phase=False),
    )


# ----------------------------------------------------------------------
# Tracer semantics
# ----------------------------------------------------------------------
def test_null_tracer_is_the_default():
    tracer = obs.get_tracer()
    assert not tracer.enabled
    assert not obs.tracing_active()
    with obs.span("anything") as sp:  # all no-ops, nothing recorded
        sp.counter("x")
        sp.gauge("y", 1.0)
    obs.counter("loose")
    obs.gauge("loose_gauge", 2)
    assert tracer.trace() is None
    assert tracer.capture(tracer.mark()) is None


def test_span_tree_nesting_counters_and_gauges():
    with obs.tracing(label="unit") as tracer:
        assert obs.tracing_active()
        with obs.span("outer"):
            obs.counter("ticks")  # routes to the innermost open span
            with obs.span("inner") as inner:
                inner.counter("ticks", 2)
                inner.gauge("level", 3)
                inner.gauge("level", 4)  # gauges: last write wins
        obs.counter("loose")  # no open span -> trace-level counter
    assert not obs.tracing_active()
    trace = tracer.trace()
    assert [s.name for s in trace.spans] == ["outer"]
    outer = trace.spans[0]
    assert outer.counters == {"ticks": 1.0}
    assert [c.name for c in outer.children] == ["inner"]
    inner = outer.children[0]
    assert inner.counters == {"ticks": 2.0}
    assert inner.gauges == {"level": 4.0}
    assert trace.counters == {"loose": 1.0}
    assert outer.t_start <= inner.t_start <= inner.t_end <= outer.t_end
    assert trace.find("inner") is inner
    assert trace.duration_s == outer.t_end


def test_tracing_scopes_nest_and_restore():
    with obs.tracing(label="outer") as outer:
        with obs.tracing(label="nested") as nested:
            assert obs.get_tracer() is nested
            with obs.span("work"):
                pass
        assert obs.get_tracer() is outer
    assert not obs.get_tracer().enabled
    assert nested.trace().find("work") is not None
    assert outer.trace().find("work") is None


def test_mark_capture_extracts_a_section():
    with obs.tracing() as tracer:
        with obs.span("before"):
            pass
        mark = tracer.mark()
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        captured = tracer.capture(mark)
    assert [s.name for s in captured.spans] == ["a", "b"]
    assert captured.pid == tracer.pid
    assert captured.wall_epoch == tracer.wall_epoch


def test_record_span_with_parent_and_clamping():
    with obs.tracing() as tracer:
        parent = tracer.record_span("level", 1.0, 3.0, gauges={"pid": 42})
        tracer.record_span("queue_wait", 1.0, 1.5, parent=parent)
        tracer.record_span("backwards", 2.0, 1.0, parent=parent)
    trace = tracer.trace()
    level = trace.find("level")
    assert level.gauges == {"pid": 42.0}
    assert [c.name for c in level.children] == ["queue_wait", "backwards"]
    assert level.children[1].duration_s == 0.0  # end clamped to start


def test_trace_pickles_roundtrip():
    with obs.tracing(label="p") as tracer:
        with obs.span("s") as sp:
            sp.counter("n", 5)
    trace = tracer.trace()
    clone = pickle.loads(pickle.dumps(trace))
    assert clone.label == "p"
    assert clone.find("s").counters == {"n": 5.0}


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _toy_trace(label="t", pid=1, epoch=100.0) -> Trace:
    span = Span(name="work", t_start=0.5, t_end=1.5)
    span.counter("items", 3)
    span.children.append(Span(name="part", t_start=0.6, t_end=0.9))
    return Trace(spans=[span], label=label, pid=pid, wall_epoch=epoch,
                 counters={"total": 1.0})


def test_chrome_trace_merges_processes_on_one_axis():
    obj = obs.chrome_trace([
        _toy_trace(pid=1, epoch=100.0),
        None,  # untraced run: skipped
        _toy_trace(label="late", pid=2, epoch=101.0),
    ])
    assert obs.validate_chrome_trace(obj) == []
    events = obj["traceEvents"]
    xs = [e for e in events if e["ph"] == "X" and e["name"] == "work"]
    assert len(xs) == 2
    by_pid = {e["pid"]: e for e in xs}
    # pid 2's tracer started one wall second later.
    assert by_pid[2]["ts"] - by_pid[1]["ts"] == pytest.approx(1e6)
    assert by_pid[1]["dur"] == pytest.approx(1e6)
    assert by_pid[1]["args"] == {"items": 3.0}
    metas = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} == {"t", "late"}


def test_chrome_trace_disambiguates_same_pid_tracks():
    obj = obs.chrome_trace([_toy_trace(pid=7), _toy_trace(pid=7)])
    assert {e["tid"] for e in obj["traceEvents"]} == {1, 2}


def test_validate_chrome_trace_flags_problems():
    assert obs.validate_chrome_trace([]) != []
    assert obs.validate_chrome_trace({}) != []
    bad_ts = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1,
                               "tid": 1, "ts": -5, "dur": 1}]}
    assert any("ts" in p for p in obs.validate_chrome_trace(bad_ts))
    unknown = {"traceEvents": [{"name": "x", "ph": "Q",
                                "pid": 1, "tid": 1}]}
    assert any("phase" in p for p in obs.validate_chrome_trace(unknown))
    missing = {"traceEvents": [{"ph": "M", "pid": 1, "tid": 1}]}
    assert any("name" in p for p in obs.validate_chrome_trace(missing))


def test_write_chrome_trace_emits_loadable_json(tmp_path):
    path = tmp_path / "trace.json"
    obs.write_chrome_trace(path, [_toy_trace()])
    obj = json.loads(path.read_text())
    assert obs.validate_chrome_trace(obj) == []


def test_trace_summary_aggregates_sibling_spans():
    trace = Trace(label="sum", pid=3)
    for n in range(3):
        sp = Span(name="round", t_start=float(n), t_end=n + 0.5)
        sp.counter("buffers", 2)
        sp.gauge("left", 10 - n)
        trace.spans.append(sp)
    text = obs.format_trace_summary(trace)
    assert "trace sum (pid 3)" in text
    row = next(line for line in text.splitlines()
               if line.lstrip().startswith("round"))
    assert "buffers=6" in row  # counters sum over the group
    assert "left=8" in row  # gauges keep the last value
    assert obs.format_trace_summary(None) == "(no trace recorded)"


# ----------------------------------------------------------------------
# Instrumented flow
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_flow():
    circuit = s38417_like(scale=0.02)
    config = FlowConfig(tp_percent=2.0, atpg=FAST_ATPG)
    with obs.tracing(label="test-flow"):
        return run_flow(circuit, cmos130(), config)


def test_traced_flow_top_spans_match_stage_keys(traced_flow):
    trace = traced_flow.trace
    assert trace is not None
    names = tuple(span.name for span in trace.spans)
    assert names == tuple(traced_flow.stage_seconds)
    assert names == STAGE_KEYS


def test_traced_flow_span_durations_match_stage_seconds(traced_flow):
    for span in traced_flow.trace.spans:
        recorded = traced_flow.stage_seconds[span.name]
        # The span wraps the same code block the stage timer covers.
        assert span.duration_s <= recorded + 0.05
        assert span.duration_s == pytest.approx(recorded, rel=0.35,
                                                abs=0.05)


def test_traced_flow_records_stage_detail(traced_flow):
    trace = traced_flow.trace
    atpg = trace.find("atpg")
    assert atpg is not None and atpg.counters["patterns"] > 0
    assert trace.find("podem") is not None
    route = trace.find("global_route")
    assert route is not None and route.counters["nets_routed"] > 0
    cts = [s for s in trace.walk() if s.name.startswith("clock_tree:")]
    assert cts and all(s.counters.get("buffers", 0) >= 1 for s in cts)
    sta = trace.find("sta")
    assert sta is not None and "hold_violations_left" in sta.gauges
    tpi = trace.find("tpi_scan")
    assert tpi is not None and tpi.gauges["test_points"] >= 1


def test_untraced_flow_has_no_trace():
    circuit = s38417_like(scale=0.012)
    config = FlowConfig(atpg=FAST_ATPG, run_layout_phase=False)
    result = run_flow(circuit, cmos130(), config)
    assert result.trace is None


def test_tracing_does_not_change_results():
    def run():
        circuit = s38417_like(scale=0.012)
        config = FlowConfig(atpg=FAST_ATPG, run_layout_phase=False)
        return run_flow(circuit, cmos130(), config)

    plain = run()
    with obs.tracing():
        traced = run()
    assert plain.test_metrics() == traced.test_metrics()


# ----------------------------------------------------------------------
# Executor integration
# ----------------------------------------------------------------------
def test_traced_sweep_ships_worker_traces_and_parent_spans():
    with obs.tracing(label="sweep") as tracer:
        result = run_sweep(small_experiment(),
                           ExecutorConfig(jobs=1, trace=True))
    sched = tracer.trace()
    for run in result.runs.values():
        assert run.trace is not None
        assert run.trace.find("tpi_scan") is not None
    levels = [s for s in sched.spans if s.name.startswith("level:")]
    assert len(levels) == 2
    for level in levels:
        assert [c.name for c in level.children] == ["queue_wait",
                                                    "worker_run"]
    merged = obs.chrome_trace(
        [run.trace for run in result.runs.values()] + [sched])
    assert obs.validate_chrome_trace(merged) == []


def test_untraced_sweep_ships_no_traces():
    result = run_sweep(small_experiment(), ExecutorConfig(jobs=1))
    assert all(run.trace is None for run in result.runs.values())


def test_traced_sweep_hits_untraced_cache(tmp_path):
    """The trace flag never enters the cache key.

    Entries written by an untraced sweep must be served verbatim to a
    traced one; cache-served summaries carry no trace (their wall
    epoch would be stale) but keep their recorded stage timings.
    """
    cache_dir = str(tmp_path / "cache")
    run_sweep(small_experiment(),
              ExecutorConfig(jobs=1, cache_dir=cache_dir))
    with obs.tracing(label="warm") as tracer:
        warm = run_sweep(small_experiment(),
                         ExecutorConfig(jobs=1, cache_dir=cache_dir,
                                        trace=True))
    assert all(run.from_cache for run in warm.runs.values())
    assert all(run.trace is None for run in warm.runs.values())
    for run in warm.runs.values():
        assert sum(run.stage_seconds.values()) == 0.0
        eff = run.effective_stage_seconds()
        assert eff == run.cached_stage_seconds
        assert sum(eff.values()) > 0.0
    sched = tracer.trace()
    assert sched.counters["cache_hits"] == len(warm.runs)
    assert sched.counters["cache_misses"] == 0.0
    assert any(s.name.startswith("cache_hit:") for s in sched.spans)
    table = format_stage_seconds(warm)
    assert "cached" in table and "yes" in table and "atpg" in table


def test_effective_stage_seconds_on_fresh_run():
    summary = FlowSummary(tp_percent=0.0, n_test_points=0,
                          stage_seconds={"atpg": 1.25})
    assert summary.effective_stage_seconds() == {"atpg": 1.25}


def test_flow_summary_trace_attribute_backcompat():
    """Entries pickled before the trace field existed still load."""
    old = FlowSummary(tp_percent=0.0, n_test_points=0)
    old.__dict__.pop("trace")  # simulate a pre-trace pickle
    restored = pickle.loads(pickle.dumps(old))
    assert restored.trace is None
    assert restored.effective_stage_seconds() == {}


# ----------------------------------------------------------------------
# Validator rejection paths and the zero-overhead null tracer
# ----------------------------------------------------------------------
def test_validate_chrome_trace_more_rejections():
    neg_dur = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1,
                                "tid": 1, "ts": 0, "dur": -1}]}
    assert any("dur" in p for p in obs.validate_chrome_trace(neg_dur))
    non_numeric = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1,
                                    "tid": 1, "ts": "soon", "dur": 0}]}
    assert any("ts" in p for p in obs.validate_chrome_trace(non_numeric))
    missing_ids = {"traceEvents": [{"name": "x", "ph": "M"}]}
    problems = obs.validate_chrome_trace(missing_ids)
    assert any("pid" in p for p in problems)
    assert any("tid" in p for p in problems)
    not_an_event = {"traceEvents": [42]}
    assert any("not an object" in p
               for p in obs.validate_chrome_trace(not_an_event))
    # one problem per event, and positions are reported
    several = {"traceEvents": [{"name": "ok", "ph": "M", "pid": 1,
                                "tid": 1}, 42]}
    problems = obs.validate_chrome_trace(several)
    assert len(problems) == 1 and "traceEvents[1]" in problems[0]


def test_null_tracer_zero_overhead_invariant():
    """The disabled path allocates nothing: every call on the null
    tracer hands back the same shared singletons."""
    from repro.obs.tracer import _NULL_SPAN

    tracer = obs.NULL_TRACER
    assert obs.get_tracer() is tracer  # process-wide shared instance
    assert tracer.span("a") is tracer.span("b") is _NULL_SPAN
    assert tracer.record_span("x", 0.0, 1.0) is _NULL_SPAN
    assert tracer.now() == 0.0 and tracer.rel_wall(1234.5) == 0.0
    assert tracer.mono_epoch == 0.0 and tracer.wall_epoch == 0.0
    assert tracer.mark() == 0
    assert tracer.capture(0) is None and tracer.trace() is None
    # the null span swallows everything without storing it
    with tracer.span("s") as sp:
        sp.counter("n", 5)
        sp.gauge("g", 1.0)
    assert sp.counters == {} and sp.gauges == {}
    assert sp.duration_s == 0.0 and sp.children == []
