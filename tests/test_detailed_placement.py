"""Tests for the detailed-placement refinement pass."""

import pytest

from repro.layout import build_floorplan, global_place, refine_placement


@pytest.fixture(scope="module")
def refined():
    from repro.circuits import s38417_like
    c = s38417_like(scale=0.04)
    plan = build_floorplan(c, 0.95)
    placement = global_place(c, plan)
    before = placement.total_hpwl_um(c)
    gain = refine_placement(c, placement, passes=2)
    return c, plan, placement, before, gain


def test_refinement_reduces_hpwl(refined):
    c, plan, placement, before, gain = refined
    after = placement.total_hpwl_um(c)
    assert after <= before
    assert gain >= 0
    assert before - after == pytest.approx(gain, rel=0.05, abs=2.0)


def test_refinement_preserves_legality(refined):
    c, plan, placement, _, _ = refined
    for row_idx, cells in enumerate(placement.rows_cells):
        row = plan.rows[row_idx]
        spans = sorted(
            (placement.positions[n][0] - c.instances[n].cell.width_um / 2,
             placement.positions[n][0] + c.instances[n].cell.width_um / 2)
            for n in cells
        )
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0 + 1e-6
        if spans:
            assert spans[0][0] >= row.x0 - 1e-6
            assert spans[-1][1] <= row.x1 + 1e-6


def test_zero_passes_is_noop():
    from repro.circuits import s38417_like
    c = s38417_like(scale=0.02)
    plan = build_floorplan(c, 0.9)
    placement = global_place(c, plan)
    snapshot = dict(placement.positions)
    assert refine_placement(c, placement, passes=0) == 0.0
    assert placement.positions == snapshot
