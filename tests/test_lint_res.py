"""Tests for the resource/durability lint pack (RES001–RES004).

Fixtures pin each rule; the drop-fsync seeded mutation proves RES004
bites on the real job store; and a regression test locks in the
executor fix this pack caught: the sweep journal must close even when
the scheduler fails to construct.
"""

from __future__ import annotations

import functools
import textwrap
from pathlib import Path

import pytest

from repro.lint.mutation import MUTATIONS, check_mutation
from repro.lint.resrules import lint_resources
from repro.lint.selfrules import default_source_root


def _lint(tmp_path, code, name="mod.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return lint_resources(tmp_path)


def _ids(report):
    return [d.rule_id for d in report.diagnostics]


# ---------------------------------------------------------------------------
# RES001 — resource open at return


def test_res001_flags_file_open_at_return(tmp_path):
    report = _lint(tmp_path, """\
        def leak(path):
            fh = open(path)
            return fh.read()

        def closed(path):
            fh = open(path)
            try:
                return fh.read()
            finally:
                fh.close()

        def managed(path):
            with open(path) as fh:
                return fh.read()

        def escapes(path):
            fh = open(path)
            return fh
    """)
    res001 = [d for d in report.diagnostics if d.rule_id == "RES001"]
    assert len(res001) == 1
    assert res001[0].line == 2


def test_res001_tracks_journal_and_store_openers(tmp_path):
    report = _lint(tmp_path, """\
        from repro.core.resilience import SweepJournal

        def leak(path):
            journal = SweepJournal(path)
            journal.record("x")

        def closed(path):
            journal = SweepJournal(path)
            try:
                journal.record("x")
            finally:
                journal.close()
    """)
    res001 = [d for d in report.diagnostics if d.rule_id == "RES001"]
    assert len(res001) == 1
    assert "journal" in res001[0].message


def test_res001_guard_refinement_avoids_false_positive(tmp_path):
    report = _lint(tmp_path, """\
        def guarded(path, want):
            fh = open(path) if want else None
            try:
                return fh.read() if fh is not None else ""
            finally:
                if fh is not None:
                    fh.close()
    """)
    assert "RES001" not in _ids(report)


# ---------------------------------------------------------------------------
# RES002 — pools


def test_res002_flags_unshutdown_pool(tmp_path):
    report = _lint(tmp_path, """\
        from concurrent.futures import ThreadPoolExecutor

        def bad(items, work):
            pool = ThreadPoolExecutor(4)
            return list(pool.map(work, items))

        def good(items, work):
            with ThreadPoolExecutor(4) as pool:
                return list(pool.map(work, items))
    """)
    assert _ids(report).count("RES002") == 1


# ---------------------------------------------------------------------------
# RES003 — leak on the exception path only


def test_res003_warns_when_only_normal_path_closes(tmp_path):
    report = _lint(tmp_path, """\
        def risky(path):
            fh = open(path)
            data = fh.read()
            fh.close()
            return data
    """)
    res003 = [d for d in report.diagnostics if d.rule_id == "RES003"]
    assert len(res003) == 1
    assert res003[0].severity == "warning"


def test_res003_quiet_with_try_finally(tmp_path):
    report = _lint(tmp_path, """\
        def safe(path):
            fh = open(path)
            try:
                return fh.read()
            finally:
                fh.close()
    """)
    assert "RES003" not in _ids(report)


# ---------------------------------------------------------------------------
# RES004 — the durable write contract (§14: write → flush → fsync)


def test_res004_clean_on_full_contract(tmp_path):
    report = _lint(tmp_path, """\
        import os

        class Store:
            def append(self, line):  # lint: durable
                self._handle.write(line)
                self._handle.flush()
                try:
                    os.fsync(self._handle.fileno())
                except OSError:
                    pass
    """)
    assert "RES004" not in _ids(report)


def test_res004_flags_missing_fsync(tmp_path):
    report = _lint(tmp_path, """\
        import os

        class Store:
            def append(self, line):  # lint: durable
                self._handle.write(line)
                self._handle.flush()
    """)
    res004 = [d for d in report.diagnostics if d.rule_id == "RES004"]
    assert len(res004) == 1
    assert res004[0].severity == "error"


def test_res004_flags_missing_flush(tmp_path):
    report = _lint(tmp_path, """\
        import os

        class Store:
            def append(self, line):  # lint: durable
                self._handle.write(line)
                os.fsync(self._handle.fileno())
    """)
    assert "RES004" in _ids(report)


# ---------------------------------------------------------------------------
# Seeded mutation against the real job store


def test_drop_fsync_mutation_is_caught(tmp_path):
    by_name = {m.name: m for m in MUTATIONS}
    hits = check_mutation(default_source_root(), by_name["drop-fsync"],
                          tmp_path)
    assert hits, "fsync removal in JobStore.record_transition escaped"
    assert all(d.rule_id == "RES004" for d in hits)


# ---------------------------------------------------------------------------
# The executor regression this pack caught: the sweep journal closes
# even when the scheduler fails before running a single task.


def test_sweep_journal_closed_when_scheduler_raises(tmp_path, monkeypatch):
    from repro.atpg import AtpgConfig
    from repro.circuits import s38417_like
    from repro.core import ExecutorConfig, ExperimentConfig, FlowConfig
    from repro.core import executor as executor_mod
    from repro.core.resilience import SweepJournal

    journals = []

    class SpyJournal(SweepJournal):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            journals.append(self)

    class BoomScheduler:
        def __init__(self, *args, **kwargs):
            raise RuntimeError("scheduler init failed")

    monkeypatch.setattr(executor_mod, "SweepJournal", SpyJournal)
    monkeypatch.setattr(executor_mod, "_Scheduler", BoomScheduler)

    config = ExperimentConfig(
        name="s38417",
        circuit_factory=functools.partial(s38417_like, scale=0.012),
        tp_percents=(0.0,),
        flow=FlowConfig(atpg=AtpgConfig(seed=7, backtrack_limit=24,
                                        max_deterministic=60)),
    )
    executor = ExecutorConfig(jobs=1,
                              journal=str(tmp_path / "sweep.jsonl"))
    with pytest.raises(RuntimeError, match="scheduler init failed"):
        executor_mod.run_sweeps_report([config], executor)

    assert journals, "sweep never opened its journal"
    assert all(j._handle.closed for j in journals), \
        "journal handle leaked past the failed sweep"


# ---------------------------------------------------------------------------
# The real tree stays clean


def test_repro_sources_have_no_resource_findings():
    report = lint_resources(default_source_root())
    assert report.diagnostics == [], report.format_text()
