"""Import-stability tests for the public ``repro`` / ``repro.api``
surface.

The supported surface — ``repro.__all__``, ``repro.api.__all__`` and
the :class:`FlowConfig` field set — is frozen as a JSON snapshot under
``tests/golden/``.  Adding, renaming or removing a public name fails
here until the snapshot is deliberately refreshed with
``--update-golden``, which is exactly the review speed bump an API
contract needs (CI runs this file as its public-API lint step).
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from pathlib import Path

import pytest

import repro
from repro import api
from repro.core import FlowConfig

SNAPSHOT_PATH = Path(__file__).parent / "golden" / "api_surface.json"


def current_surface() -> dict:
    return {
        "repro.__all__": sorted(repro.__all__),
        "repro.api.__all__": sorted(api.__all__),
        "FlowConfig.fields": sorted(
            f.name for f in dataclasses.fields(FlowConfig)
        ),
        # The Placer strategy protocol is an API contract engines are
        # written against: freeze each method's full signature so an
        # argument rename/retype fails here, not in third-party code.
        "Placer.methods": {
            name: str(inspect.signature(getattr(api.Placer, name)))
            for name in ("place", "refine", "eco_place")
        },
    }


def test_api_surface_matches_snapshot(update_golden):
    fresh = current_surface()
    if update_golden:
        SNAPSHOT_PATH.parent.mkdir(exist_ok=True)
        SNAPSHOT_PATH.write_text(
            json.dumps(fresh, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        pytest.skip(f"rewrote {SNAPSHOT_PATH}")
    assert SNAPSHOT_PATH.exists(), (
        f"API snapshot {SNAPSHOT_PATH} missing; create it with "
        "--update-golden"
    )
    frozen = json.loads(SNAPSHOT_PATH.read_text(encoding="utf-8"))
    assert fresh == frozen, (
        "public API surface changed; if intentional, refresh the "
        "snapshot with --update-golden and flag the change in review"
    )


def test_facade_exports_resolve():
    """Every advertised name is importable and the right object."""
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    assert repro.run is api.run
    assert repro.sweep is api.sweep
    assert repro.load_circuit is api.load_circuit
    assert repro.CIRCUITS is api.CIRCUITS
    assert repro.PLACERS is api.PLACERS
    assert repro.FlowConfig is FlowConfig
    for name in repro.__all__:
        assert name in dir(repro)
    with pytest.raises(AttributeError):
        repro.nonexistent_name


def test_flow_config_round_trip():
    config = FlowConfig(tp_percent=3.0, exclude_nets=["b", "a"],
                        hold_fix_iterations=5)
    data = config.to_dict()
    assert data["exclude_nets"] == ["a", "b"]  # JSON-friendly, sorted
    assert isinstance(data["atpg"], dict)
    clone = FlowConfig.from_dict(data)
    assert clone == config
    # And the round trip survives JSON itself.
    assert FlowConfig.from_dict(json.loads(json.dumps(data))) == config


def test_flow_config_replace_chainable():
    base = FlowConfig()
    variant = base.replace(tp_percent=2.0).replace(fix_holds=False)
    assert variant.tp_percent == 2.0 and not variant.fix_holds
    assert base.tp_percent == 0.0 and base.fix_holds  # untouched
    nested = base.replace(sta={"hold_margin_ps": 40.0})
    assert nested.sta.hold_margin_ps == 40.0
    assert base.sta.hold_margin_ps == 0.0


def test_flow_config_rejects_unknown_keys_with_suggestion():
    with pytest.raises(ValueError, match="did you mean 'tp_percent'"):
        FlowConfig.from_dict({"tp_precent": 1.0})
    with pytest.raises(ValueError, match="unknown FlowConfig key"):
        FlowConfig().replace(not_a_knob=True)
    with pytest.raises(ValueError, match="did you mean 'hold_margin_ps'"):
        FlowConfig().replace(sta={"hold_margin": 1.0})


def test_api_run_accepts_circuit_names_and_options():
    result = repro.run("s38417", scale=0.012, tp_percent=0.0,
                       run_atpg_phase=False)
    assert result.sta is not None
    assert result.config.target_utilization == 0.97  # registry default
    with pytest.raises(KeyError, match="unknown circuit"):
        repro.run("s9999")
    with pytest.raises(ValueError, match="did you mean"):
        repro.run("s38417", tp_precent=1.0)


def test_api_sweep_serial_matches_experiment():
    result = repro.sweep("s38417", scale=0.012,
                         tp_percents=(0.0, 5.0),
                         run_atpg_phase=False)
    assert sorted(result.runs) == [0.0, 5.0]
    rows = result.table2_rows()
    assert [r["tp_percent"] for r in rows] == [0.0, 5.0]
