"""Tests for the DEF and Liberty exporters."""

import pytest

from repro.layout import build_floorplan, global_place, GlobalRouter
from repro.layout.defio import DBU_PER_UM, def_statistics, to_def
from repro.library.liberty import parse_liberty_cells, to_liberty


@pytest.fixture(scope="module")
def laid_out():
    from repro.circuits import s38417_like
    c = s38417_like(scale=0.02)
    plan = build_floorplan(c, 0.9)
    placement = global_place(c, plan)
    router = GlobalRouter(c, placement)
    router.route_all()
    return c, plan, placement, router.routed


def test_def_structure(laid_out):
    c, plan, placement, routed = laid_out
    text = to_def(c, plan, placement, routed)
    assert text.startswith("VERSION 5.8 ;")
    assert text.rstrip().endswith("END DESIGN")
    stats = def_statistics(text)
    assert stats["rows"] == plan.n_rows
    assert stats["components"] == len(placement.positions)
    assert stats["pins"] == len(c.inputs) + len(c.outputs)
    assert stats["nets"] == len(c.nets)


def test_def_coordinates_in_dbu(laid_out):
    c, plan, placement, routed = laid_out
    text = to_def(c, plan, placement)
    die_line = next(l for l in text.splitlines() if l.startswith("DIEAREA"))
    coords = [int(tok) for tok in die_line.replace("(", " ")
              .replace(")", " ").split() if tok.lstrip("-").isdigit()]
    assert coords[2] == int(round(plan.chip.x1 * DBU_PER_UM))


def test_def_net_cap(laid_out):
    c, plan, placement, routed = laid_out
    text = to_def(c, plan, placement, routed, max_nets=5)
    assert def_statistics(text)["nets"] == 5


def test_def_routed_wiring_emitted(laid_out):
    c, plan, placement, routed = laid_out
    text = to_def(c, plan, placement, routed)
    assert "+ ROUTED M" in text


def test_liberty_round_trip_inventory(lib):
    text = to_liberty(lib)
    assert text.startswith("library (cmos130) {")
    cells = parse_liberty_cells(text)
    assert set(cells) == set(lib.cells)
    for name, info in cells.items():
        cell = lib[name]
        assert info["area"] == pytest.approx(cell.area_um2, abs=1e-3)
        assert set(info["pins"]) == set(cell.pins)


def test_liberty_contains_nldm_tables(lib):
    text = to_liberty(lib)
    assert "cell_rise (delay_template)" in text
    assert "rise_transition (delay_template)" in text
    assert "clocked_on" in text       # sequential groups present
    assert "max_capacitance" in text
