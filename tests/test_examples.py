"""Smoke tests: the example scripts run end to end at tiny scales."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs():
    out = _run("quickstart.py", "0.015")
    assert "fault coverage" in out
    assert "T_cp" in out and "chip area" in out


def test_layout_gallery_runs(tmp_path):
    out = _run("layout_gallery.py", str(tmp_path))
    assert "fig3c_routed.svg" in out
    assert (tmp_path / "fig3a_floorplan.svg").exists()
    assert (tmp_path / "fig3b_placement.svg").exists()
    assert (tmp_path / "fig3c_routed.svg").exists()


def test_lbist_motivation_runs():
    out = _run("lbist_motivation.py", "0.02", "256")
    assert "FC, no TPs" in out
    assert "Section 2" in out


@pytest.mark.slow
def test_timing_aware_runs():
    out = _run("timing_aware_tpi.py", "0.03")
    assert "timing-aware TPI" in out


def test_engine_sensitivity_runs():
    out = _run("engine_sensitivity.py", "0.012", "s38417", "0,2")
    assert "engine-to-engine spread" in out
    assert "quadratic" in out and "sa" in out
    assert "largest engine-induced spread" in out
