"""Additional sequential-simulator coverage: state loads, errors,
multi-domain clocking."""

import pytest

from repro.netlist.simulate import SequentialSimulator


def test_load_state_and_errors(lib, tiny_pipeline):
    sim = SequentialSimulator(tiny_pipeline, width=1)
    sim.load_state({"ff1": 1, "ff2": 0})
    assert sim.state["ff1"] == 1
    # Loaded state is immediately visible downstream.
    assert sim.net_value("n2") == 0  # INV(q1=1)
    with pytest.raises(KeyError):
        sim.load_state({"nope": 1})
    with pytest.raises(KeyError):
        sim.set_input("nope", 1)


def test_selective_domain_clocking(lib):
    """Only the clocked domain's flip-flops capture."""
    from repro.circuits import control_core
    c = control_core(scale=0.04)
    sim = SequentialSimulator(c, width=1)
    ffs8 = [i.name for i in c.instances.values()
            if i.is_sequential and c.clock_of(i.name) == "clk8"]
    ffs64 = [i.name for i in c.instances.values()
             if i.is_sequential and c.clock_of(i.name) == "clk64"]
    assert ffs8 and ffs64
    # Force distinctive data by loading ones and clocking one domain.
    sim.load_state({name: 1 for name in ffs8 + ffs64})
    before_8 = {n: sim.state[n] for n in ffs8}
    sim.clock_edge(["clk64"])
    # clk8 registers kept their state; clk64 registers recomputed.
    assert {n: sim.state[n] for n in ffs8} == before_8


def test_width_masks_values(lib, tiny_pipeline):
    sim = SequentialSimulator(tiny_pipeline, width=4)
    sim.set_input("pi_a", 0xFFFF)  # wider than the simulator's 4 bits
    assert sim.inputs["pi_a"] == 0xF
