"""Unit tests for static test-set compaction on crafted circuits."""

import pytest

from repro.atpg import (
    BitSimulator,
    Fault,
    FaultSimulator,
    build_fault_list,
)
from repro.atpg.compaction import pack_block, reverse_order_compaction
from repro.netlist import Circuit, extract_comb_view


@pytest.fixture()
def two_and_gates(lib):
    """Two independent AND2 gates -> two outputs.

    Pattern (a=1,b=1,c=1,d=1) covers the hard sa0 faults of both gates
    at once; single-sided patterns cover only one — the minimal setting
    where reverse-order compaction provably helps.
    """
    c = Circuit("t")
    for name in ("a", "b", "cc", "d"):
        c.add_input(name)
    c.add_net("x")
    c.add_net("y")
    c.add_instance("g1", lib["AND2_X1"], {"A": "a", "B": "b", "Z": "x"})
    c.add_instance("g2", lib["AND2_X1"], {"A": "cc", "B": "d", "Z": "y"})
    c.add_output("px", "x")
    c.add_output("py", "y")
    return c


def _pattern(view, assignment):
    idx = {n: j for j, n in enumerate(view.input_nets)}
    p = 0
    for net, value in assignment.items():
        if value:
            p |= 1 << idx[net]
    return p


def test_reverse_order_keeps_late_dense_patterns(two_and_gates):
    c = two_and_gates
    view = extract_comb_view(c, "test")
    fsim = FaultSimulator(BitSimulator(view))
    targets = [Fault("x", None, 0), Fault("y", None, 0)]

    only_x = _pattern(view, {"a": 1, "b": 1})
    only_y = _pattern(view, {"cc": 1, "d": 1})
    both = _pattern(view, {"a": 1, "b": 1, "cc": 1, "d": 1})

    kept = reverse_order_compaction(fsim, [only_x, only_y, both], targets)
    assert kept == [both]

    # Without a dominating pattern, both survive.
    kept2 = reverse_order_compaction(fsim, [only_x, only_y], targets)
    assert sorted(kept2) == sorted([only_x, only_y])


def test_compaction_never_loses_coverage(two_and_gates):
    c = two_and_gates
    view = extract_comb_view(c, "test")
    fsim = FaultSimulator(BitSimulator(view))
    flist = build_fault_list(c, view)
    targets = [f for f in flist.targets() if fsim.in_view(f)]

    import random
    rng = random.Random(0)
    patterns = [rng.getrandbits(len(view.input_nets)) for _ in range(40)]

    def detected_by(pattern_set):
        remaining = set(targets)
        for start in range(0, len(pattern_set), 64):
            block = pattern_set[start:start + 64]
            words = pack_block(view.input_nets, block)
            remaining -= set(fsim.run_block(words, remaining))
        return set(targets) - remaining

    before = detected_by(patterns)
    kept = reverse_order_compaction(fsim, patterns, sorted(before, key=str))
    after = detected_by(kept)
    assert before == after
    assert len(kept) <= len(patterns)


def test_pack_block_limits(two_and_gates):
    view = extract_comb_view(two_and_gates, "test")
    words = pack_block(view.input_nets, [])
    assert all(w == 0 for w in words.values())
