"""Property tests for the sweep-service wire protocol.

Two families:

* **Round-trips** — for randomly generated requests, cells, failures,
  reports and job records, ``decode(json(encode(x))) == x``.  Every
  payload really crosses ``json.dumps``/``json.loads``, so the
  properties cover JSON's own quirks (float round-trips, key
  stringification) and not just the codec functions.
* **Torn journals** — a sweep journal truncated at *any* byte
  boundary (a crashed writer, or a reader racing a write) must decode
  into progress that never crashes and never over-reports: every
  count is bounded by the full journal's, and cells only ever look
  *less* finished, not more.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import KINDS, FaultPlan, FaultSpec
from repro.core.executor import FlowSummary, PathSummary, StaSummary
from repro.core.metrics import TestDataMetrics
from repro.core.resilience import SweepReport, TaskFailure, parse_journal_lines
from repro.service.protocol import (
    JOB_STATES,
    PROTOCOL_VERSION,
    JobRecord,
    SweepRequest,
    WireError,
    canonical_result_bytes,
    failure_from_wire,
    failure_to_wire,
    progress_from_journal,
    report_from_wire,
    report_to_wire,
    summary_from_wire,
    summary_to_wire,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
# JSON-exact floats: what comes back from json.loads must equal what
# went in, so NaN/inf are out (json rejects them with allow_nan=False).
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
nonneg = st.floats(min_value=0, max_value=100, allow_nan=False)
names = st.text(
    alphabet=st.characters(codec="ascii", categories=("L", "N")),
    min_size=1, max_size=12,
)

fault_specs = st.builds(
    FaultSpec,
    kind=st.sampled_from(KINDS),
    circuit=st.one_of(st.just("*"), names),
    tp_percent=st.one_of(st.none(), nonneg),
    stage=st.sampled_from(("tpi_scan", "sta", "atpg")),
    times=st.integers(min_value=-1, max_value=3),
    seconds=st.floats(min_value=0.01, max_value=10, allow_nan=False),
)
fault_plans = st.builds(
    FaultPlan, faults=st.lists(fault_specs, max_size=3).map(tuple)
)

requests = st.builds(
    SweepRequest,
    circuit=names,
    scale=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
    tp_percents=st.one_of(
        st.none(),
        st.lists(nonneg, min_size=1, max_size=6, unique=True).map(tuple),
    ),
    options=st.dictionaries(
        names,
        st.one_of(st.booleans(), st.integers(-100, 100), finite, names),
        max_size=4,
    ),
    jobs=st.integers(min_value=1, max_value=8),
    retries=st.integers(min_value=0, max_value=5),
    task_timeout_s=st.one_of(
        st.none(), st.floats(min_value=0.1, max_value=600,
                             allow_nan=False)),
    name=st.one_of(st.none(), names),
    chaos=st.one_of(st.none(), fault_plans),
)

test_metrics = st.builds(
    TestDataMetrics,
    n_test_points=st.integers(0, 500),
    n_flip_flops=st.integers(0, 2000),
    n_chains=st.integers(0, 32),
    l_max=st.integers(0, 200),
    n_faults=st.integers(0, 10000),
    fault_coverage=st.floats(0, 1, allow_nan=False),
    fault_efficiency=st.floats(0, 1, allow_nan=False),
    n_patterns=st.integers(0, 5000),
)

path_summaries = st.builds(
    PathSummary,
    domain=names,
    endpoint=names,
    startpoint=names,
    t_wires_ps=finite,
    t_intrinsic_ps=finite,
    t_load_dep_ps=finite,
    t_setup_ps=finite,
    t_skew_ps=finite,
    total_ps=finite,
    slack_ps=finite,
    n_test_points=st.integers(0, 100),
)

sta_summaries = st.builds(
    StaSummary,
    paths=st.dictionaries(
        names, st.lists(path_summaries, max_size=2).map(tuple),
        max_size=2),
    slow_nodes=st.lists(names, max_size=3).map(tuple),
    hold_violations=st.integers(0, 50),
)

summaries = st.builds(
    FlowSummary,
    tp_percent=nonneg,
    n_test_points=st.integers(0, 500),
    test=st.one_of(st.none(), test_metrics),
    area=st.one_of(
        st.none(), st.dictionaries(names, finite, min_size=1,
                                   max_size=4)),
    sta=st.one_of(st.none(), sta_summaries),
    stage_seconds=st.dictionaries(names, nonneg, max_size=3),
    cached_stage_seconds=st.dictionaries(names, nonneg, max_size=3),
    log=st.lists(names, max_size=3).map(tuple),
    cache_key=st.text(alphabet="0123456789abcdef", min_size=8,
                      max_size=8),
    from_cache=st.booleans(),
    worker_pid=st.integers(0, 1 << 22),
)

failures = st.builds(
    TaskFailure,
    name=names,
    tp_percent=nonneg,
    attempts=st.integers(1, 5),
    error_type=names,
    error_message=st.text(max_size=40),
    chain=st.lists(names, max_size=3).map(tuple),
    cache_key=st.text(alphabet="0123456789abcdef", min_size=8,
                      max_size=8),
    retryable=st.booleans(),
)


@st.composite
def reports(draw):
    """A SweepReport whose results cover 1-2 circuits, 1-3 cells."""
    from repro.core.experiment import ExperimentResult

    circuits = draw(st.lists(names, min_size=1, max_size=2,
                             unique=True))
    results = {}
    for circuit in circuits:
        pcts = draw(st.lists(nonneg, min_size=1, max_size=3,
                             unique=True))
        results[circuit] = ExperimentResult(
            name=circuit,
            runs={pct: draw(summaries) for pct in pcts},
        )
    return SweepReport(
        results=results,
        failures=tuple(draw(st.lists(failures, max_size=2))),
        retries=draw(st.integers(0, 5)),
        timeouts=draw(st.integers(0, 5)),
        worker_crashes=draw(st.integers(0, 5)),
        journal_path=draw(st.one_of(st.none(), names)),
        cache_hits=draw(st.integers(0, 10)),
        cache_misses=draw(st.integers(0, 10)),
        cache_evictions=draw(st.integers(0, 10)),
        cancelled=draw(st.booleans()),
    )


job_records = st.builds(
    JobRecord,
    id=names,
    state=st.sampled_from(JOB_STATES),
    request=requests,
    submitted_at=st.floats(min_value=0, max_value=2e9,
                           allow_nan=False),
    started_at=st.one_of(st.none(),
                         st.floats(min_value=0, max_value=2e9,
                                   allow_nan=False)),
    finished_at=st.one_of(st.none(),
                          st.floats(min_value=0, max_value=2e9,
                                    allow_nan=False)),
    error=st.one_of(st.none(), st.text(max_size=30)),
    coalesced_with=st.one_of(st.none(), names),
)


def through_json(payload):
    """Force the payload through real JSON, like the HTTP layer does."""
    return json.loads(json.dumps(payload, allow_nan=False))


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
class TestRoundTrips:
    @given(request=requests)
    def test_request(self, request):
        assert SweepRequest.from_wire(
            through_json(request.to_wire())) == request

    @given(request=requests)
    def test_spec_key_is_stable_across_the_wire(self, request):
        decoded = SweepRequest.from_wire(through_json(request.to_wire()))
        assert decoded.spec_key() == request.spec_key()

    @given(summary=summaries)
    def test_summary(self, summary):
        assert summary_from_wire(
            through_json(summary_to_wire(summary))) == summary

    @given(failure=failures)
    def test_failure(self, failure):
        assert failure_from_wire(
            through_json(failure_to_wire(failure))) == failure

    @settings(max_examples=25, deadline=None)
    @given(report=reports())
    def test_report(self, report):
        decoded = report_from_wire(through_json(report_to_wire(report)))
        assert decoded == report

    @settings(max_examples=25, deadline=None)
    @given(report=reports())
    def test_report_keeps_canonical_bytes(self, report):
        """The byte-identity contract survives the wire: a decoded
        report's deterministic content digests identically."""
        decoded = report_from_wire(through_json(report_to_wire(report)))
        for name, result in report.results.items():
            assert (canonical_result_bytes(decoded.results[name])
                    == canonical_result_bytes(result))

    @given(record=job_records)
    def test_job_record(self, record):
        assert JobRecord.from_wire(
            through_json(record.to_wire())) == record


# ----------------------------------------------------------------------
# Strictness
# ----------------------------------------------------------------------
class TestStrictDecoding:
    def test_unknown_request_key_rejected(self):
        wire = SweepRequest(circuit="s38417").to_wire()
        wire["tp_percent"] = 2.0  # typo'd singular
        with pytest.raises(WireError, match="tp_percent"):
            SweepRequest.from_wire(wire)

    def test_version_mismatch_rejected(self):
        wire = SweepRequest(circuit="s38417").to_wire()
        wire["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(WireError, match="version"):
            SweepRequest.from_wire(wire)

    @pytest.mark.parametrize("mutate", [
        lambda w: w.update(circuit=""),
        lambda w: w.update(circuit=None),
        lambda w: w.update(tp_percents=[1.0, 1.0]),
        lambda w: w.update(tp_percents=[-2.0]),
        lambda w: w.update(tp_percents="0,2,5"),
        lambda w: w.update(jobs=0),
        lambda w: w.update(jobs="four"),
        lambda w: w.update(retries=-1),
        lambda w: w.update(options=[1, 2]),
        lambda w: w.update(chaos={"faults": [{"kind": "meteor"}]}),
    ], ids=["empty-circuit", "null-circuit", "dup-tp", "negative-tp",
            "string-tp", "zero-jobs", "string-jobs", "negative-retries",
            "list-options", "bad-chaos"])
    def test_invalid_requests_rejected(self, mutate):
        wire = SweepRequest(circuit="s38417").to_wire()
        mutate(wire)
        with pytest.raises(WireError):
            SweepRequest.from_wire(wire)

    def test_non_object_body_rejected(self):
        with pytest.raises(WireError):
            SweepRequest.from_wire(["not", "an", "object"])


# ----------------------------------------------------------------------
# Torn journals
# ----------------------------------------------------------------------
def _journal_lines(n_cells, done):
    """A plausible sweep journal: plan, then lifecycle, then end."""
    cells = [{"name": "c", "tp_percent": float(i), "key": f"k{i}"}
             for i in range(n_cells)]
    lines = [json.dumps({"event": "sweep_start", "cells": cells})]
    for i in range(done):
        lines.append(json.dumps({"event": "task_start", "key": f"k{i}",
                                 "name": "c", "tp_percent": float(i),
                                 "attempt": 0}))
        lines.append(json.dumps({"event": "task_done", "key": f"k{i}",
                                 "name": "c", "tp_percent": float(i),
                                 "attempt": 0}))
    lines.append(json.dumps({"event": "sweep_end", "ok": True}))
    return lines


@settings(max_examples=200, deadline=None)
@given(
    n_cells=st.integers(1, 5),
    done=st.integers(0, 5),
    cut=st.integers(min_value=0, max_value=10_000),
)
def test_truncated_journal_never_crashes_or_overreports(n_cells, done,
                                                        cut):
    done = min(done, n_cells)
    full_text = "\n".join(_journal_lines(n_cells, done)) + "\n"
    torn_text = full_text[:min(cut, len(full_text))]

    full = progress_from_journal(
        parse_journal_lines(full_text.splitlines()))
    torn = progress_from_journal(
        parse_journal_lines(torn_text.splitlines()))

    assert full["total"] == n_cells and full["done"] == done
    assert full["finished"]
    # Torn view: bounded by the truth, and in-progress rather than
    # broken — a cell whose completion frame tore stays running.
    assert torn["total"] <= full["total"]
    assert torn["done"] <= full["done"]
    assert torn["failed"] == 0
    # "finished" is only reachable when every frame survived (a cut at
    # the trailing newline still leaves all frames intact).
    assert (not torn["finished"]
            or torn_text.splitlines() == full_text.splitlines())


@settings(max_examples=100, deadline=None)
@given(garbage=st.binary(max_size=200))
def test_garbage_journal_decodes_to_empty_progress(garbage):
    text = garbage.decode("utf-8", errors="replace")
    progress = progress_from_journal(
        parse_journal_lines(text.splitlines()))
    assert progress["done"] == 0 and progress["failed"] == 0
    assert not progress["finished"]


def test_mid_sweep_journal_reads_as_in_progress():
    lines = _journal_lines(3, 3)
    # Drop the sweep_end and the last task_done: cell 2 is running.
    torn = progress_from_journal(parse_journal_lines(lines[:-2]))
    assert torn["total"] == 3
    assert torn["done"] == 2
    assert torn["running"] == 1
    assert not torn["finished"]


def test_journal_with_torn_start_materialises_cells_from_events():
    lines = _journal_lines(2, 2)[1:]  # sweep_start frame lost
    progress = progress_from_journal(parse_journal_lines(lines))
    assert progress["total"] == 2
    assert progress["done"] == 2


# ----------------------------------------------------------------------
# Telemetry fields on the wire
# ----------------------------------------------------------------------
class TestTelemetryFields:
    def test_trace_flag_round_trips(self):
        request = SweepRequest(circuit="s38417", trace=True)
        decoded = SweepRequest.from_wire(through_json(request.to_wire()))
        assert decoded.trace is True and decoded == request

    def test_trace_flag_does_not_change_spec_key(self):
        """An observability knob must not defeat job coalescing: a
        traced and an untraced submission of the same sweep are the
        same spec."""
        traced = SweepRequest(circuit="s38417", tp_percents=(0.0, 2.0),
                              trace=True)
        plain = SweepRequest(circuit="s38417", tp_percents=(0.0, 2.0))
        assert traced.spec_key() == plain.spec_key()

    def test_non_bool_trace_rejected(self):
        wire = SweepRequest(circuit="s38417").to_wire()
        wire["trace"] = "yes"
        with pytest.raises(WireError, match="trace"):
            SweepRequest.from_wire(wire)

    def test_report_timestamps_round_trip(self):
        report = SweepReport(started_at=1700000000.25,
                             finished_at=1700000001.5,
                             started_mono=50.125, finished_mono=51.375)
        decoded = report_from_wire(through_json(report_to_wire(report)))
        assert decoded.started_at == report.started_at
        assert decoded.finished_at == report.finished_at
        assert decoded.started_mono == report.started_mono
        assert decoded.finished_mono == report.finished_mono

    def test_report_timestamps_default_for_old_wire(self):
        wire = report_to_wire(SweepReport())
        for key in ("started_at", "finished_at", "started_mono",
                    "finished_mono"):
            wire.pop(key, None)  # payload from an older daemon
        decoded = report_from_wire(through_json(wire))
        assert decoded.started_at == 0.0
        assert decoded.finished_mono == 0.0
