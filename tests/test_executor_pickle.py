"""Picklability lint: nothing unpicklable may escape a worker boundary.

The sweep executor ships :class:`_LevelTask` specs *into* worker
processes and :class:`FlowSummary` objects *out of* them (and into the
on-disk result cache).  Every type on that boundary must pickle; this
module is the import-time gate CI runs (with ``-p no:cacheprovider``)
so a config or summary field regressing to something unpicklable —
a lambda, an open handle, a netlist back-reference — fails fast, not
deep inside a pool worker.
"""

from __future__ import annotations

import dataclasses
import functools
import pickle

import pytest

from repro.atpg import AtpgConfig
from repro.circuits import s38417_like
from repro.core import (
    ExecutorConfig,
    ExperimentConfig,
    FlowConfig,
    FlowSummary,
    PathSummary,
    StaSummary,
    TestDataMetrics,
)
from repro.core.executor import _LevelTask
from repro.sta.analysis import StaConfig


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))


def make_summary() -> FlowSummary:
    """A fully populated summary, worst case for the boundary."""
    path = PathSummary(
        domain="clk", endpoint="ff1", startpoint="ff0",
        t_wires_ps=10.0, t_intrinsic_ps=20.0, t_load_dep_ps=30.0,
        t_setup_ps=40.0, t_skew_ps=-5.0, total_ps=95.0, slack_ps=5.0,
        n_test_points=2,
    )
    return FlowSummary(
        tp_percent=2.0,
        n_test_points=3,
        test=TestDataMetrics(
            n_test_points=3, n_flip_flops=40, n_chains=2, l_max=20,
            n_faults=1000, fault_coverage=0.97, fault_efficiency=0.99,
            n_patterns=80,
        ),
        area={"core_area_um2": 1234.5, "chip_area_um2": 2345.6},
        sta=StaSummary(paths={"clk": (path,)}, slow_nodes=("g1",),
                       hold_violations=0),
        stage_seconds={"tpi_scan": 0.1, "atpg": 1.0},
        cached_stage_seconds={},
        log=("pid 1: atpg: 1000.0 ms",),
        cache_key="ab" * 32,
        worker_pid=1,
    )


@pytest.mark.parametrize("obj", [
    AtpgConfig(),
    StaConfig(),
    FlowConfig(exclude_nets={"n1", "n2"}),
    ExecutorConfig(jobs=4, cache_dir="/tmp/x"),
    TestDataMetrics(n_test_points=0, n_flip_flops=1, n_chains=1, l_max=1,
                    n_faults=1, fault_coverage=1.0, fault_efficiency=1.0,
                    n_patterns=1),
], ids=lambda o: type(o).__name__)
def test_configs_and_metrics_roundtrip(obj):
    assert roundtrip(obj) == obj


def test_flow_summary_roundtrips_exactly():
    summary = make_summary()
    assert roundtrip(summary) == summary


def test_flow_summary_fields_hold_no_heavy_objects():
    # The summary must never grow a netlist/placement back-reference:
    # that is the exact mistake this gate exists to catch.
    banned = {"circuit", "placement", "routed", "parasitics", "plan"}
    fields = {f.name for f in dataclasses.fields(FlowSummary)}
    assert not fields & banned
    blob = pickle.dumps(make_summary(), pickle.HIGHEST_PROTOCOL)
    assert len(blob) < 16 * 1024  # summaries stay kilobytes, not netlists


def test_level_task_with_partial_factory_roundtrips():
    task = _LevelTask(
        name="s38417",
        tp_percent=1.0,
        circuit_factory=functools.partial(s38417_like, scale=0.01),
        flow=FlowConfig(),
        library=None,
        cache_key="cd" * 32,
    )
    clone = roundtrip(task)
    assert clone.name == task.name
    assert clone.flow == task.flow
    # The factory survives the trip and still builds the same netlist.
    assert clone.circuit_factory().stats() == task.circuit_factory().stats()


def test_experiment_config_with_partial_is_poolable():
    config = ExperimentConfig(
        name="s38417",
        circuit_factory=functools.partial(s38417_like, scale=0.01),
        tp_percents=(0.0, 1.0),
        flow=FlowConfig(),
    )
    clone = roundtrip(config)
    assert clone.tp_percents == config.tp_percents


# ----------------------------------------------------------------------
# Back-compat: pickles written before the resilience layer still load
# ----------------------------------------------------------------------
def strip_fields(obj, *names):
    """Clone ``obj`` as an older pickle would deserialise it: without
    the named (newer) instance attributes, so loading must fall back
    to the dataclass's class-level defaults."""
    import copy

    clone = copy.copy(obj)
    for name in names:
        clone.__dict__.pop(name, None)
    return clone


def test_old_flow_summary_pickle_without_trace_still_loads():
    # PR 2 added ``trace``; cache entries written before it lack the
    # attribute entirely.  They must load and read the default.
    old = roundtrip(strip_fields(make_summary(), "trace"))
    assert old.trace is None
    assert old.cache_key == "ab" * 32
    assert old.effective_stage_seconds()  # methods still work


def test_old_executor_config_pickle_without_resilience_knobs():
    from repro.core.resilience import RetryPolicy

    config = ExecutorConfig(jobs=4, cache_dir="/tmp/x")
    old = roundtrip(strip_fields(
        config, "retries", "task_timeout_s", "backoff_base_s",
        "backoff_max_s", "fail_fast", "resume", "chaos",
    ))
    assert old.retries == 2
    assert old.task_timeout_s is None
    assert old.fail_fast is False and old.resume is False
    assert old.chaos is None
    assert isinstance(old.retry_policy, RetryPolicy)


def test_task_failure_and_sweep_report_roundtrip():
    from repro.core.resilience import SweepReport, TaskFailure

    failure = TaskFailure.from_exception(
        "s38417", 2.0, attempts=3, exc=OSError("disk hiccup"),
        cache_key="ab" * 32,
    )
    clone = roundtrip(failure)
    assert clone == failure  # exception excluded from equality
    assert clone.chain == ("OSError: disk hiccup",)
    report = SweepReport(failures=(failure,), retries=1, timeouts=2)
    clone = roundtrip(report)
    assert clone.failures == (failure,)
    assert (clone.retries, clone.timeouts) == (1, 2)


def test_old_task_failure_pickle_without_newer_fields():
    from repro.core.resilience import SweepReport, TaskFailure

    failure = TaskFailure("s38417", 2.0, 1, "OSError", "boom")
    old = roundtrip(strip_fields(failure, "chain", "cache_key",
                                 "retryable", "exception"))
    assert old.chain == () and old.cache_key == ""
    assert old.retryable is False and old.exception is None
    report = roundtrip(strip_fields(SweepReport(), "journal_path",
                                    "worker_crashes"))
    assert report.journal_path is None and report.worker_crashes == 0
