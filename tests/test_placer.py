"""The ``Placer`` strategy API: registry, shim, seeds, config wiring."""

from __future__ import annotations

import pytest

from repro import api
from repro.circuits import s38417_like
from repro.core import FlowConfig
from repro.layout import (
    PLACERS,
    Placer,
    PlacerSpec,
    QuadraticPlacer,
    SimulatedAnnealingPlacer,
    build_floorplan,
    get_placer,
    global_place,
    placement_seed,
    register_placer,
    require_placer,
)


@pytest.fixture(scope="module")
def circuit():
    return s38417_like(scale=0.012)


# -- registry ----------------------------------------------------------


def test_builtin_engines_registered():
    assert set(PLACERS) >= {"quadratic", "sa"}
    for name, spec in PLACERS.items():
        assert isinstance(spec, PlacerSpec)
        engine = spec.factory()
        assert engine.name == name
        assert isinstance(engine, Placer)
        assert spec.description


def test_api_reexports_registry():
    assert api.PLACERS is PLACERS
    assert api.Placer is Placer
    assert api.get_placer is get_placer


def test_get_placer_returns_fresh_instances():
    assert get_placer("quadratic") is not get_placer("quadratic")
    assert isinstance(get_placer("sa"), SimulatedAnnealingPlacer)
    # SA extends the quadratic engine (same global place, new refine).
    assert isinstance(get_placer("sa"), QuadraticPlacer)


def test_unknown_placer_did_you_mean():
    with pytest.raises(KeyError, match="did you mean 'quadratic'"):
        get_placer("quadratc")
    with pytest.raises(KeyError, match="choose from"):
        get_placer("annealing")
    with pytest.raises(ValueError, match="did you mean 'sa'"):
        require_placer("sa2")


def test_register_placer_round_trip():
    class NullPlacer(QuadraticPlacer):
        name = "null-test"

    register_placer("null-test", NullPlacer, "test-only engine")
    try:
        assert isinstance(get_placer("null-test"), NullPlacer)
    finally:
        del PLACERS["null-test"]
    with pytest.raises(KeyError):
        get_placer("null-test")


# -- back-compat shim --------------------------------------------------


def test_global_place_shim_matches_engine(circuit):
    plan = build_floorplan(circuit, target_utilization=0.97)
    via_shim = global_place(circuit, plan)
    plan2 = build_floorplan(circuit, target_utilization=0.97)
    via_engine = get_placer("quadratic").place(circuit, plan2)
    assert via_shim.positions == via_engine.positions
    assert via_shim.rows_cells == via_engine.rows_cells
    assert via_shim.row_of == via_engine.row_of


# -- deterministic seeding ---------------------------------------------


def test_placement_seed_stable_and_engine_separated(circuit):
    s1 = placement_seed(circuit, "sa")
    s2 = placement_seed(circuit, "sa")
    assert s1 == s2
    assert 0 <= s1 < 2 ** 63
    assert placement_seed(circuit, "quadratic") != s1
    other = s38417_like(scale=0.02)
    assert placement_seed(other, "sa") != s1


def test_placement_seed_ignores_positions(circuit):
    before = placement_seed(circuit, "sa")
    plan = build_floorplan(circuit, target_utilization=0.97)
    global_place(circuit, plan)  # placing must not perturb the seed
    assert placement_seed(circuit, "sa") == before


# -- FlowConfig wiring -------------------------------------------------


def test_flow_config_validates_placer():
    assert FlowConfig().placer == "quadratic"
    assert FlowConfig(placer="sa").placer == "sa"
    with pytest.raises(ValueError, match="did you mean 'quadratic'"):
        FlowConfig(placer="quadratc")
    with pytest.raises(ValueError, match="unknown placer"):
        FlowConfig.from_dict({"placer": "gordian"})
    with pytest.raises(ValueError, match="unknown placer"):
        FlowConfig().replace(placer="annealer")


def test_flow_config_placer_round_trips():
    config = FlowConfig(placer="sa")
    assert FlowConfig.from_dict(config.to_dict()) == config
