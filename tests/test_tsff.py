"""Tests for the TSFF behavioural model (paper Figure 1)."""

import itertools

import pytest

from repro.library import STATE_PIN
from repro.tpi import (
    ALL_MODES,
    APPLICATION,
    SCAN_CAPTURE,
    SCAN_FLUSH,
    SCAN_SHIFT,
    mode_table,
    tsff_next_state,
    tsff_output,
)
from repro.atpg.threeval import eval3_encoded, encode, decode


def test_application_mode_is_transparent():
    for d, ti, state in itertools.product((0, 1), repeat=3):
        assert tsff_output(d, ti, APPLICATION.te, APPLICATION.tr,
                           state) == d


def test_capture_mode_observes_and_controls():
    for d, ti, state in itertools.product((0, 1), repeat=3):
        # Output controlled from the stored state...
        assert tsff_output(d, ti, SCAN_CAPTURE.te, SCAN_CAPTURE.tr,
                           state) == state
        # ...while the functional input is captured.
        assert tsff_next_state(d, ti, SCAN_CAPTURE.te) == d


def test_shift_mode_shifts_scan_input():
    for d, ti, state in itertools.product((0, 1), repeat=3):
        assert tsff_next_state(d, ti, SCAN_SHIFT.te) == ti
        assert tsff_output(d, ti, SCAN_SHIFT.te, SCAN_SHIFT.tr,
                           state) == state


def test_flush_mode_streams_scan_input():
    """TE=1, TR=0: TI passes combinationally through both muxes."""
    for d, ti, state in itertools.product((0, 1), repeat=3):
        assert tsff_output(d, ti, SCAN_FLUSH.te, SCAN_FLUSH.tr,
                           state) == ti


def test_mode_table_is_complete():
    table = mode_table()
    assert set(table) == {m.name for m in ALL_MODES}
    assert all(len(rows) == 8 for rows in table.values())


def test_library_bypass_expression_matches_reference(lib):
    """The TSFF cell's bypass function IS the Fig. 1 behaviour."""
    bypass = lib["TSFF_X1"].sequential.bypass
    for d, ti, te, tr, state in itertools.product((0, 1), repeat=5):
        pins = {
            "D": encode(d), "TI": encode(ti), "TE": encode(te),
            "TR": encode(tr), STATE_PIN: encode(state),
        }
        got = decode(eval3_encoded(bypass, pins))
        assert got == tsff_output(d, ti, te, tr, state), (
            d, ti, te, tr, state
        )


def test_library_next_state_matches_reference(lib):
    next_state = lib["TSFF_X1"].sequential.next_state
    for d, ti, te in itertools.product((0, 1), repeat=3):
        pins = {"D": encode(d), "TI": encode(ti), "TE": encode(te)}
        got = decode(eval3_encoded(next_state, pins))
        assert got == tsff_next_state(d, ti, te)


def test_tsff_pass_through_costs_two_mux_delays(lib):
    """Paper 3.1: application-mode delay grows by >= two mux delays."""
    tsff = lib["TSFF_X1"]
    mux = lib["MUX2_X1"]
    tsff_d = tsff.arc("D", "Q").delay.lookup(40.0, 10.0).value
    mux_d = mux.arc("A", "Z").delay.lookup(40.0, 10.0).value
    assert tsff_d >= 1.5 * mux_d
