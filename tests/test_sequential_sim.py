"""Cycle-accurate sequential simulation tests: scan and TSFF modes
observed on the real machine, not inferred from combinational views."""

import random

import pytest

from repro.netlist import Circuit
from repro.netlist.simulate import SequentialSimulator
from repro.scan import SCAN_ENABLE, TP_ENABLE, insert_scan
from repro.tpi import TpiConfig, insert_test_points


def test_pipeline_propagates_over_two_cycles(lib, tiny_pipeline):
    sim = SequentialSimulator(tiny_pipeline)
    sim.set_input("pi_a", 0b1100)
    sim.set_input("pi_b", 0b1010)
    # n1 = NAND(a, b) settles combinationally.
    assert sim.net_value("n1") & 0b1111 == (~(0b1100 & 0b1010)) & 0b1111
    sim.clock_edge()          # FF1 captures n1
    assert sim.state["ff1"] & 0b1111 == 0b0111
    sim.clock_edge()          # FF2 captures INV(q1)
    assert sim.state["ff2"] & 0b1111 == 0b1000
    assert sim.output_value("po") & 0b1111 == 0b1000


def test_scan_shift_on_the_sequential_machine(lib, small_circuit_mutable):
    c = small_circuit_mutable
    chains = insert_scan(c, lib, max_chain_length=16)
    sim = SequentialSimulator(c, width=1)
    sim.set_input(SCAN_ENABLE, 1)
    chain = chains.chains[0]
    si = chains.scan_in_ports[0]
    stimulus = [1, 0, 1, 1, 0]
    domain = chains.clock_of_chain[0]
    for bit in stimulus + [0] * (len(chain) - len(stimulus)):
        sim.set_input(si, bit)
        sim.clock_edge([domain])
    # After len(chain) shifts, the first bit sits at the chain tail.
    for k, bit in enumerate(stimulus):
        ff = chain[len(chain) - 1 - k] if k < len(chain) else None
        assert sim.state[ff] == stimulus[k]


def test_tsff_modes_on_the_sequential_machine(lib):
    c = Circuit("t")
    c.add_clock("clk", 1000.0)
    c.add_input("d")
    c.add_input("si")
    c.add_input(SCAN_ENABLE)
    c.add_input(TP_ENABLE)
    c.add_net("q")
    c.add_instance("tp", lib["TSFF_X1"], {
        "D": "d", "TI": "si", "TE": SCAN_ENABLE, "TR": TP_ENABLE,
        "CLK": "clk", "Q": "q",
    })
    c.add_output("po", "q")
    sim = SequentialSimulator(c, width=1)

    # Application mode: transparent.
    sim.set_input(SCAN_ENABLE, 0)
    sim.set_input(TP_ENABLE, 0)
    sim.set_input("d", 1)
    assert sim.output_value("po") == 1
    sim.set_input("d", 0)
    assert sim.output_value("po") == 0

    # Capture mode: output from the (zero) state while D is captured.
    sim.set_input(TP_ENABLE, 1)
    sim.set_input("d", 1)
    assert sim.output_value("po") == 0
    sim.clock_edge()
    assert sim.state["tp"] == 1
    assert sim.output_value("po") == 1  # now controlled from the flop

    # Flush mode: TI streams through combinationally.
    sim.set_input(SCAN_ENABLE, 1)
    sim.set_input(TP_ENABLE, 0)
    sim.set_input("si", 1)
    assert sim.output_value("po") == 1
    sim.set_input("si", 0)
    assert sim.output_value("po") == 0


def test_tpi_preserves_sequential_behaviour(lib):
    """The strongest equivalence check: run the same input sequence on
    the original and the TPI'd circuit, compare every output each
    cycle (application mode)."""
    from repro.circuits import s38417_like
    reference = s38417_like(scale=0.015)
    modified = s38417_like(scale=0.015)
    insert_test_points(modified, lib, TpiConfig(n_test_points=3))
    insert_scan(modified, lib, max_chain_length=20)

    ref_sim = SequentialSimulator(reference)
    mod_sim = SequentialSimulator(modified)
    mod_sim.set_input(SCAN_ENABLE, 0)
    mod_sim.set_input(TP_ENABLE, 0)

    rng = random.Random(6)
    data_inputs = [n for n in reference.inputs
                   if all(n != d.net for d in reference.clocks)]
    for cycle in range(6):
        for name in data_inputs:
            word = rng.getrandbits(64)
            ref_sim.set_input(name, word)
            mod_sim.set_input(name, word)
        for port in reference.outputs:
            assert ref_sim.output_value(port) == \
                mod_sim.output_value(port), f"{port} at cycle {cycle}"
        ref_sim.clock_edge()
        mod_sim.clock_edge()
