"""Locking regression tests for the JobManager's shared state.

The concurrency lint pack (CONC001) drove ``draining`` / ``degraded``
/ ``degraded_reason`` behind locked properties and pushed every
``_get`` lookup under ``self._lock``; these tests pin the observable
behaviour of those paths so a future refactor that loses the locking
also loses a test, not just a lint finding.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.jobs import JobManager, UnknownJobError


@pytest.fixture
def manager(tmp_path):
    mgr = JobManager(cache_dir=str(tmp_path), job_workers=1)
    try:
        yield mgr
    finally:
        mgr.shutdown()


def test_degraded_property_round_trip(manager):
    assert manager.degraded is False
    assert manager.degraded_reason is None
    manager._enter_degraded_mode("disk full while caching")
    assert manager.degraded is True
    assert manager.degraded_reason == "disk full while caching"
    # One-way and first-reason-wins: a second failure must not
    # clobber the original diagnosis.
    manager._enter_degraded_mode("later unrelated failure")
    assert manager.degraded_reason == "disk full while caching"


def test_draining_property_round_trip(manager):
    assert manager.draining is False
    manager.begin_drain()
    assert manager.draining is True
    manager.begin_drain()  # idempotent
    assert manager.draining is True


def test_metrics_snapshot_carries_flags(manager):
    before = manager.metrics()
    assert before["draining"] is False
    assert before["degraded"] is False
    assert before["degraded_reason"] is None
    manager._enter_degraded_mode("torn cache entry")
    manager.begin_drain()
    after = manager.metrics()
    assert after["draining"] is True
    assert after["degraded"] is True
    assert after["degraded_reason"] == "torn cache entry"


def test_unknown_job_raises_through_locked_lookups(manager):
    for call in (manager.record, manager.progress, manager.report,
                 manager.trace, manager.cancel):
        with pytest.raises(UnknownJobError):
            call("j-no-such-job")


def test_concurrent_readers_survive_flag_flips(manager):
    """Hammer the locked read paths while flags flip underneath.

    Nothing here asserts interleavings — the point is that the reads
    and writes share one lock, so no read observes a torn pair (for
    example ``degraded=True`` with ``degraded_reason=None``) and
    nothing deadlocks.
    """
    stop = threading.Event()
    failures = []

    def reader():
        while not stop.is_set():
            try:
                snapshot = manager.metrics()
                if snapshot["degraded"]:
                    if snapshot["degraded_reason"] is None:
                        failures.append("degraded without a reason")
                manager.records()
                manager.retry_after_hint()
                manager.draining
                manager.degraded_reason
            except Exception as exc:  # pragma: no cover - the assert
                failures.append(repr(exc))
                return

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for n in range(50):
            if n == 20:
                manager._enter_degraded_mode("mid-hammer failure")
            if n == 35:
                manager.begin_drain()
            manager.metrics()
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
    assert not failures, failures
    assert all(not t.is_alive() for t in threads)
    assert manager.degraded and manager.draining


def test_prom_registry_reflects_flag_flips(manager):
    from repro.obs.promtext import render_registry

    manager._enter_degraded_mode("boom")
    manager.begin_drain()
    text = render_registry(manager.prom_registry())
    assert "repro_degraded 1" in text
    assert "repro_draining 1" in text
