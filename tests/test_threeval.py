"""Tests for the compiled three-valued algebra."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.atpg.threeval import (
    MUX_TABLE,
    NOT_TABLE,
    ONE,
    X,
    XOR_TABLE,
    ZERO,
    compile_node3,
    decode,
    encode,
    eval3_encoded,
)
from repro.library.logic import And, Mux, Not, Or, Var, Xor

VALUES = (X, ONE, ZERO)


def test_encode_decode_round_trip():
    assert decode(encode(None)) is None
    assert decode(encode(0)) == 0
    assert decode(encode(1)) == 1


def test_not_table():
    assert NOT_TABLE[X] == X
    assert NOT_TABLE[ONE] == ZERO
    assert NOT_TABLE[ZERO] == ONE


def test_and_or_bitwise_identities():
    """The bitwise AND/OR formulas match three-valued semantics."""
    def and3(a, b):
        return ((a & b & 1) | ((a | b) & 2))

    def or3(a, b):
        return (((a | b) & 1) | ((a & b) & 2))

    for a, b in itertools.product(VALUES, repeat=2):
        da, db = decode(a), decode(b)
        # Reference: None-propagating boolean logic.
        if da == 0 or db == 0:
            want_and = 0
        elif da is None or db is None:
            want_and = None
        else:
            want_and = 1
        if da == 1 or db == 1:
            want_or = 1
        elif da is None or db is None:
            want_or = None
        else:
            want_or = 0
        assert decode(and3(a, b)) == want_and, (da, db)
        assert decode(or3(a, b)) == want_or, (da, db)


def test_xor_and_mux_tables():
    for a, b in itertools.product(VALUES, repeat=2):
        da, db = decode(a), decode(b)
        want = None if (da is None or db is None) else da ^ db
        assert decode(XOR_TABLE[a * 3 + b]) == want
    for s, a, b in itertools.product(VALUES, repeat=3):
        ds, da, db = decode(s), decode(a), decode(b)
        if ds == 1:
            want = db
        elif ds == 0:
            want = da
        else:
            want = da if (da == db and da is not None) else None
        assert decode(MUX_TABLE[s * 9 + a * 3 + b]) == want


EXPRS = [
    (Not("A"), ["A"]),
    (And("A", "B", "C"), ["A", "B", "C"]),
    (Or(Xor("A", "B"), Not("C")), ["A", "B", "C"]),
    (Mux("S", Var("A"), Var("B")), ["S", "A", "B"]),
    (Not(Or(And("A", "B"), Var("C"))), ["A", "B", "C"]),
]


@pytest.mark.parametrize("expr,pins", EXPRS)
def test_compiled_matches_interpreted(expr, pins):
    index = {p: i for i, p in enumerate(pins)}
    fn = compile_node3(expr, index)
    for combo in itertools.product(VALUES, repeat=len(pins)):
        values = list(combo)
        via_fn = fn(values)
        via_interp = eval3_encoded(expr, dict(zip(pins, combo)))
        assert via_fn == via_interp


@given(st.lists(st.sampled_from(VALUES), min_size=3, max_size=3))
def test_compiled_never_produces_invalid_codes(vals):
    expr = Or(And("A", "B"), Not("C"))
    fn = compile_node3(expr, {"A": 0, "B": 1, "C": 2})
    assert fn(vals) in VALUES
